"""Sharded cluster sweeps: expansion arithmetic and deterministic merge.

The ``cluster_shard`` experiment splits one big sweep into independent
per-node-range ``cluster_sweep`` cells.  These tests pin the split
arithmetic (node/job counts partition exactly, seeds derive
deterministically) and the merge (pure sorted-order folds over the
shard payloads), plus end-to-end byte-identity of a small sharded sweep
across executors.
"""

from __future__ import annotations

import pytest

from repro.runner import ExperimentRequest, ExperimentRunner, expand_request
from repro.runner.aggregate import _agg_cluster_shard, _shard_counts


def _request(**overrides) -> ExperimentRequest:
    params = {
        "policies": ("score",),
        "shards": 4,
        "n_nodes": 10,
        "n_jobs": 23,
        "duration_us": 50_000.0,
    }
    params.update(overrides)
    return ExperimentRequest.make("cluster_shard", params, seed=9)


def test_shard_counts_partition_exactly():
    assert _shard_counts(10, 4) == [3, 3, 2, 2]
    assert _shard_counts(8, 4) == [2, 2, 2, 2]
    assert _shard_counts(3, 3) == [1, 1, 1]
    assert sum(_shard_counts(1000, 7)) == 1000


def test_expansion_splits_nodes_jobs_and_seeds():
    cells = expand_request(_request())
    assert len(cells) == 4
    assert [role for role, _c in cells] == [
        f"score:shard{i:03d}" for i in range(4)
    ]
    params = [dict(c.param_dict) for _r, c in cells]
    assert sum(p["n_nodes"] for p in params) == 10
    assert sum(p["n_jobs"] for p in params) == 23
    assert all(p["policy"] == "score" for p in params)
    # seeds derive from the experiment seed, one per shard, all distinct
    seeds = [c.seed for _r, c in cells]
    assert seeds == [9_000, 9_001, 9_002, 9_003]


def test_expansion_caps_shards_at_node_count():
    cells = expand_request(_request(shards=16, n_nodes=3))
    assert len(cells) == 3
    assert all(c.param_dict["n_nodes"] == 1 for _r, c in cells)


def test_expansion_rejects_nonpositive_shards():
    with pytest.raises(ValueError):
        expand_request(_request(shards=0))


def _shard_payload(seed, n_nodes, n_jobs, mean, count, ratio, completed):
    quantiles = (
        [float(mean + q) for q in range(101)] if mean is not None else []
    )
    return {
        "policy": "score",
        "n_nodes": n_nodes,
        "n_jobs": n_jobs,
        "duration_us": 50_000.0,
        "seed": seed,
        "lc": {
            "latency": {"count": count, "mean": mean, "quantiles": quantiles},
            "slo_us": 100.0,
            "slo_violation_ratio": ratio,
            "per_node_p99_us": {"count": n_nodes},
        },
        "batch": {
            "submitted": n_jobs,
            "admitted": n_jobs - 1,
            "enqueued": 1,
            "rejected": 0,
            "still_queued": n_jobs - completed - 1,
            "completed": completed,
            "jobs_per_s": float(completed) * 2.0,
            "job_duration": {},
            "queue_delay": {},
            "relocations": {"total": 2, "stall": 1, "preemptive": 1},
        },
        "nodes": {
            "final_score_mean": float(seed % 10),
            "final_score_max": float(seed % 10) + 1.0,
        },
    }


def test_merge_is_weighted_and_summed():
    by_role = {
        "score:shard000": _shard_payload(9000, 3, 12, 50.0, 100, 0.10, 6),
        "score:shard001": _shard_payload(9001, 2, 11, 70.0, 300, 0.30, 5),
    }
    merged = _agg_cluster_shard({}, by_role)
    score = merged["score"]
    assert score["n_nodes"] == 5
    assert score["n_jobs"] == 23
    assert score["shards"] == 2
    lc = score["lc"]
    assert lc["queries"] == 400
    # query-weighted means: (50*100 + 70*300)/400 and (0.1*100+0.3*300)/400
    assert lc["mean_us"] == pytest.approx(65.0)
    assert lc["slo_violation_ratio"] == pytest.approx(0.25)
    assert lc["worst_shard_p99_us"] == pytest.approx(70.0 + 99)
    batch = score["batch"]
    assert batch["submitted"] == 23
    assert batch["completed"] == 11
    assert batch["jobs_per_s"] == pytest.approx(22.0)
    assert batch["relocations"] == {"total": 4, "stall": 2, "preemptive": 2}
    # node-weighted score mean: (0*3 + 1*2)/5
    assert score["nodes"]["final_score_mean"] == pytest.approx(0.4)
    assert score["nodes"]["final_score_max"] == pytest.approx(2.0)
    assert [row["shard"] for row in score["per_shard"]] == ["000", "001"]


def test_merge_with_zero_queries_is_none_not_nan():
    by_role = {
        "score:shard000": _shard_payload(9000, 2, 5, None, 0, None, 1),
    }
    payload = by_role["score:shard000"]
    payload["lc"]["latency"]["quantiles"] = []
    merged = _agg_cluster_shard({}, by_role)
    lc = merged["score"]["lc"]
    assert lc["mean_us"] is None
    assert lc["slo_violation_ratio"] is None
    assert lc["worst_shard_p99_us"] is None


@pytest.mark.slow
def test_sharded_sweep_bytes_identical_across_executors():
    req = [_request(n_nodes=6, n_jobs=10, shards=3, duration_us=30_000.0)]
    inproc = ExperimentRunner(parallel=1, executor="inprocess").run(req)
    pool = ExperimentRunner(parallel=2, executor="pool").run(req)
    assert inproc.merged_bytes() == pool.merged_bytes()
