"""ResultCache under concurrent writers and hostile on-disk state.

Two processes hammering the same cell into one cache directory must
never produce a torn entry (every ``put`` is write-to-unique-tmp then
atomic rename), and any way an entry can rot on disk — truncation,
garbage bytes, an empty file, binary junk — must read back as a miss
or corruption, never a crash.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.runner import Cell, ResultCache

_CELL = dict(
    kind="colocation",
    params={
        "service": "redis",
        "workload": "a",
        "setting": "alone",
        "duration_us": 5_000.0,
    },
    seed=7,
)

_PAYLOAD = {"queries": 3, "latency": {"mean": 12.5}}


def _make_cell() -> Cell:
    return Cell.make(_CELL["kind"], _CELL["params"], _CELL["seed"])


def _writer(root: str, barrier, n_puts: int) -> None:
    cache = ResultCache(root)
    cell = _make_cell()
    barrier.wait()
    for i in range(n_puts):
        cache.put(cell, _PAYLOAD, compute_s=0.25 * (i + 1))


@pytest.mark.slow
def test_concurrent_writers_never_corrupt(tmp_path):
    ctx = mp.get_context("spawn")  # no inherited state, true two-process race
    barrier = ctx.Barrier(2)
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), barrier, 25))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0

    cache = ResultCache(tmp_path)
    entry = cache.get_entry(_make_cell())
    assert entry is not None, "racing writers must still leave a valid entry"
    payload, compute_s = entry
    assert payload == _PAYLOAD
    assert compute_s > 0.0
    assert cache.stats.hits == 1
    assert cache.stats.corrupted == 0
    # rename cleaned up every tmp file; nothing half-written survives
    assert list(tmp_path.glob("*.tmp.*")) == []
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_truncated_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _make_cell()
    path = cache.put(cell, _PAYLOAD)
    path.write_text(path.read_text()[:25])

    fresh = ResultCache(tmp_path)
    assert fresh.get(cell) is None
    assert fresh.stats.corrupted == 1


def test_garbage_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _make_cell()
    path = cache.put(cell, _PAYLOAD)
    for junk in (b"", b"\x00\xff\xfe garbage \x9c", b"[1, 2, 3]", b"null"):
        path.write_bytes(junk)
        fresh = ResultCache(tmp_path)
        assert fresh.get(cell) is None, f"junk {junk!r} must read as a miss"
        assert fresh.stats.hits == 0
        assert fresh.stats.corrupted == 1


def test_get_many_put_many_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    cells = [
        Cell.make("colocation", {**_CELL["params"], "setting": s}, 7)
        for s in ("alone", "holmes", "perfiso")
    ]
    cache.put_many(
        (cell, {"tag": i}, 1.5 * (i + 1)) for i, cell in enumerate(cells)
    )
    assert cache.stats.writes == 3

    fresh = ResultCache(tmp_path)
    missing = Cell.make("colocation", {**_CELL["params"], "setting": "x"}, 7)
    found = fresh.get_many(cells + [missing])
    assert set(found) == {c.cell_id for c in cells}
    for i, cell in enumerate(cells):
        payload, compute_s = found[cell.cell_id]
        assert payload == {"tag": i}
        assert compute_s == pytest.approx(1.5 * (i + 1))
    assert fresh.stats.hits == 3
    assert fresh.stats.misses == 1


def test_entries_without_compute_s_still_verify(tmp_path):
    """Entries written before timings were recorded read back as 0.0s."""
    import json

    cache = ResultCache(tmp_path)
    cell = _make_cell()
    path = cache.put(cell, _PAYLOAD, compute_s=9.0)
    entry = json.loads(path.read_text())
    del entry["compute_s"]
    path.write_text(json.dumps(entry, sort_keys=True))

    fresh = ResultCache(tmp_path)
    assert fresh.get_entry(cell) == (_PAYLOAD, 0.0)
