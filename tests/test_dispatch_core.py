"""The dispatch core and its executors: ordering, streaming, recovery.

The contract under test: whatever the transport — in-process, a process
pool, or socket worker subprocesses — and whatever goes wrong short of a
persistent cell failure, ``DispatchCore.run`` returns payloads aligned
with its input and byte-equal to the serial reference.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.runner import Cell
from repro.runner.dispatch import CostModel, DispatchCore
from repro.runner.executors import (
    Completion,
    ExecutorError,
    InProcessExecutor,
    PoolExecutor,
    SocketExecutor,
    Task,
    make_executor,
)

_PARAMS = {"service": "redis", "workload": "a", "duration_us": 5_000.0}


def _cells(n: int) -> list[Cell]:
    return [
        Cell.make("colocation", {**_PARAMS, "setting": "alone"}, seed)
        for seed in range(n)
    ]


# -- cost model ----------------------------------------------------------------


def test_cost_model_hints_override_heuristic():
    cheap = Cell.make("colocation", {**_PARAMS, "setting": "alone"}, 1)
    heavy = Cell.make(
        "cluster_sweep",
        {"n_nodes": 100, "n_jobs": 500, "duration_us": 1e6},
        1,
    )
    model = CostModel()
    assert model.estimate(heavy) > model.estimate(cheap)
    # an explicit timing hint beats any heuristic
    hinted = CostModel(hints={heavy.cell_id: 0.001, cheap.cell_id: 10.0})
    assert hinted.estimate(cheap) > hinted.estimate(heavy)


def test_cost_model_observation_calibrates_kind():
    cell_a = Cell.make("colocation", {**_PARAMS, "setting": "alone"}, 1)
    cell_b = Cell.make("colocation", {**_PARAMS, "setting": "holmes"}, 2)
    model = CostModel()
    base = model.estimate(cell_b)
    # a slow observed run of the same kind scales same-kind estimates up
    model.observe(cell_a, 100.0)
    assert model.estimate(cell_b) > base


def test_dispatch_orders_longest_expected_first():
    cells = _cells(4)
    hints = {c.cell_id: float(i + 1) for i, c in enumerate(cells)}
    seen: list[int] = []

    class Recorder(InProcessExecutor):
        def submit(self, task: Task) -> None:
            seen.append(task.seed)
            super().submit(task)

    DispatchCore(Recorder(), cost_model=CostModel(hints=hints)).run(cells)
    assert seen == [3, 2, 1, 0], "most expensive cell must dispatch first"


# -- alignment and duplicates --------------------------------------------------


def test_results_align_with_input_order_and_duplicates():
    cells = _cells(3)
    doubled = cells + [cells[0]]  # dedupe=False-style duplicate occurrence
    results = DispatchCore(InProcessExecutor()).run(doubled)
    assert len(results) == 4
    payloads = [p for p, _s in results]
    assert payloads[0] == payloads[3]
    serial = [p for p, _s in DispatchCore(InProcessExecutor()).run(cells)]
    assert payloads[:3] == serial


# -- failure recovery ----------------------------------------------------------


class _FlakyExecutor(InProcessExecutor):
    """Fails every task's first attempt with a synthetic remote error."""

    def __init__(self):
        super().__init__()
        self.failed: set[int] = set()

    def wait(self) -> list[Completion]:
        task = self._queue[0]
        if task.task_id not in self.failed:
            self.failed.add(task.task_id)
            self._queue.popleft()
            return [
                Completion(
                    task.task_id,
                    error=RuntimeError("synthetic remote crash"),
                )
            ]
        return super().wait()


def test_failed_remote_attempt_is_backfilled_streaming():
    cells = _cells(3)
    backfilled: list[str] = []

    def local_retry(cell, last_error):
        assert isinstance(last_error, RuntimeError)
        backfilled.append(cell.cell_id)
        from repro.runner.cells import execute_cell

        return execute_cell(cell), 0.0

    results = DispatchCore(
        _FlakyExecutor(), local_retry=local_retry
    ).run(cells)
    assert len(backfilled) == 3
    assert all(r is not None for r in results)


class _BrokenExecutor(InProcessExecutor):
    """Dies as a transport after accepting work."""

    def wait(self) -> list[Completion]:
        raise ExecutorError("transport lost")


def test_dead_transport_recovers_in_parent():
    cells = _cells(2)
    recovered: list[str] = []

    def local_retry(cell, last_error):
        assert isinstance(last_error, ExecutorError)
        recovered.append(cell.cell_id)
        from repro.runner.cells import execute_cell

        return execute_cell(cell), 0.0

    results = DispatchCore(
        _BrokenExecutor(), local_retry=local_retry
    ).run(cells)
    assert len(recovered) == 2
    assert all(r is not None for r in results)


def test_no_retry_callback_reraises():
    with pytest.raises(ExecutorError):
        DispatchCore(_BrokenExecutor()).run(_cells(1))


# -- executors -----------------------------------------------------------------


def test_make_executor_rejects_unknown_spec():
    with pytest.raises(ValueError):
        make_executor("carrier-pigeon", 2)


def test_inprocess_wait_without_submit_raises():
    with pytest.raises(ExecutorError):
        InProcessExecutor().wait()


def test_inprocess_cancel_removes_queued_task():
    ex = InProcessExecutor()
    cell = _cells(1)[0]
    ex.submit(Task(0, cell.kind, cell.param_dict, cell.seed))
    assert ex.cancel(0) is True
    assert ex.cancel(0) is False


@pytest.mark.slow
def test_pool_executor_streams_completions():
    cells = _cells(4)
    ex = PoolExecutor(2)
    try:
        for i, c in enumerate(cells):
            ex.submit(Task(i, c.kind, c.param_dict, c.seed))
        got: list[Completion] = []
        while len(got) < 4:
            batch = ex.wait()
            assert batch, "wait() must return at least one completion"
            got.extend(batch)
        assert sorted(c.task_id for c in got) == [0, 1, 2, 3]
        assert all(c.ok for c in got)
    finally:
        ex.close()


@pytest.mark.slow
def test_socket_executor_round_trip_matches_inprocess():
    cells = _cells(3)
    serial = [p for p, _s in DispatchCore(InProcessExecutor()).run(cells)]
    ex = SocketExecutor(2)
    try:
        remote = [p for p, _s in DispatchCore(ex).run(cells)]
    finally:
        ex.close()
    assert remote == serial


@pytest.mark.slow
def test_socket_executor_survives_worker_kill():
    """A worker killed mid-fleet is buried, respawned, its task requeued."""
    cells = _cells(2)
    ex = SocketExecutor(2, heartbeat_timeout_s=10.0)
    try:
        # kill one worker out from under the executor before dispatching
        victim = ex._workers[0].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        results = DispatchCore(ex).run(cells)
    finally:
        ex.close()
    assert all(r is not None for r in results)
    serial = DispatchCore(InProcessExecutor()).run(cells)
    assert [p for p, _s in results] == [p for p, _s in serial]


@pytest.mark.slow
def test_poisonous_cell_exhausts_requeue_budget_without_stalling_fleet():
    """A cell that kills every worker it lands on is failed after its
    requeue budget while other cells keep completing, and its stale
    bookkeeping does not outlive the failure."""
    ok_cells = [
        Cell.make("sleep", {"wall_s": 0.0, "tag": f"ok{i}"}, i)
        for i in range(3)
    ]
    poison = Cell.make(
        "sleep",
        {"mode": "exit", "parent_pid": os.getpid(), "wall_s": 0.0},
        99,
    )
    cells = [poison] + ok_cells
    events: list[tuple[str, dict]] = []
    backfilled: list[str] = []

    def local_retry(cell, last_error):
        assert isinstance(last_error, ExecutorError)
        backfilled.append(cell.cell_id)
        from repro.runner.cells import execute_cell

        # the parent's pid matches parent_pid, so the cell computes fine
        return execute_cell(cell), 0.0

    ex = SocketExecutor(
        2,
        heartbeat_timeout_s=30.0,
        max_respawns=4,
        requeue_budget=1,
        on_event=lambda name, **fields: events.append((name, fields)),
    )
    try:
        results = DispatchCore(ex, local_retry=local_retry).run(cells)
        assert ex._requeues == {}, "budget exhaustion must drop bookkeeping"
        assert ex._respawns_left == 2, "exactly two workers died"
    finally:
        ex.close()
    assert all(r is not None for r in results)
    assert backfilled == [poison.cell_id]
    names = [name for name, _fields in events]
    assert names.count("requeue") == 1
    assert names.count("requeue_exhausted") == 1
    assert names.count("respawn") == 2


@pytest.mark.slow
def test_long_compute_does_not_trip_heartbeat_bury():
    """Heartbeats come from a worker-side daemon thread, so a cell that
    computes for longer than the heartbeat timeout must complete instead
    of being buried as a flatline (the false-bury regression)."""
    cell = Cell.make("sleep", {"wall_s": 3.5}, 7)
    ex = SocketExecutor(1, heartbeat_timeout_s=2.5, max_respawns=4)
    try:
        results = DispatchCore(ex).run([cell])
        assert ex._respawns_left == 4, "no worker may be buried"
    finally:
        ex.close()
    assert results[0][0]["wall_s"] == 3.5


def test_socket_executor_init_failure_leaks_nothing(monkeypatch):
    """A spawn failure mid-__init__ must kill already-started workers and
    release the listener instead of leaking them from a half-built
    executor."""
    spawned: list = []
    real_spawn = SocketExecutor._spawn

    def flaky_spawn(self):
        if spawned:
            raise OSError("spawn refused")
        proc = real_spawn(self)
        spawned.append(proc)
        return proc

    monkeypatch.setattr(SocketExecutor, "_spawn", flaky_spawn)
    with pytest.raises(OSError, match="spawn refused"):
        SocketExecutor(2)
    assert len(spawned) == 1
    spawned[0].wait(timeout=30)
    assert spawned[0].poll() is not None, "leaked worker subprocess"


@pytest.mark.slow
def test_socket_cancel_drops_requeue_bookkeeping():
    """Cancelling a pending task clears its death count: a later clone
    with the same task id must start with a fresh requeue budget."""
    ex = SocketExecutor(1)
    try:
        cell = _cells(1)[0]
        ex.submit(Task(0, cell.kind, cell.param_dict, cell.seed))
        ex._requeues[0] = 1  # as if a worker already died on this task
        assert ex.cancel(0) is True
        assert ex._requeues == {}
    finally:
        ex.close()


# -- wire protocol -------------------------------------------------------------


def test_frame_round_trip_and_limits():
    import socket as socket_mod

    from repro.runner.worker import MAX_FRAME_BYTES, recv_frame, send_frame

    a, b = socket_mod.socketpair()
    try:
        send_frame(a, {"type": "task", "params": {"x": 1.5, "y": [1, 2]}})
        frame = recv_frame(b)
        assert frame == {"type": "task", "params": {"x": 1.5, "y": [1, 2]}}

        # a clean close reads as None (end of stream)...
        a.close()
        assert recv_frame(b) is None
    finally:
        b.close()

    # ...but a mid-frame close is a protocol error
    a, b = socket_mod.socketpair()
    try:
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(ConnectionError):
            recv_frame(b)
    finally:
        b.close()

    # an absurd length prefix is refused before any allocation
    a, b = socket_mod.socketpair()
    try:
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ValueError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_worker_canonical_params_restores_tuples():
    from repro.runner.worker import _canonical_params

    params = {"e_values": [50.0, 70.0], "service": "redis", "n": 3}
    fixed = _canonical_params(params)
    assert fixed["e_values"] == (50.0, 70.0)
    assert fixed["service"] == "redis"
    assert fixed["n"] == 3
