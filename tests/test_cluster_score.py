"""Tests for interference scoring, telemetry export and score-policy
placement/admission (the cluster-level use of the paper's VPI signal)."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ClusterBatchScheduler,
    ScoreWeights,
    interference_score,
)
from repro.core import HolmesConfig, TelemetrySnapshot
from repro.workloads.batch import BatchJobSpec

TINY = BatchJobSpec(name="tiny", iterations=20, mem_lines=1000,
                    mem_dram_frac=0.8, comp_cycles=500_000)


def snap(vpi=0.0, pressure=0.0, occupancy=0.0):
    return TelemetrySnapshot(
        time=0.0, lc_vpi_ema=vpi, reserved_pressure=pressure,
        batch_occupancy=occupancy, n_containers=0, n_lc_cpus=4,
        expanded=0, serving=False,
    )


def test_score_weights_validation():
    with pytest.raises(ValueError):
        ScoreWeights(w_vpi=-0.1)
    with pytest.raises(ValueError):
        ScoreWeights(vpi_ref=0.0)
    with pytest.raises(ValueError):
        ScoreWeights(vpi_cap=0.0)


def test_score_of_idle_node_is_zero():
    assert interference_score(snap()) == 0.0


def test_score_monotone_in_each_signal():
    w = ScoreWeights()
    base = interference_score(snap(vpi=10.0, pressure=0.2, occupancy=0.2), w)
    assert interference_score(snap(vpi=30.0, pressure=0.2, occupancy=0.2), w) > base
    assert interference_score(snap(vpi=10.0, pressure=0.6, occupancy=0.2), w) > base
    assert interference_score(snap(vpi=10.0, pressure=0.2, occupancy=0.6), w) > base


def test_score_vpi_term_normalised_and_capped():
    w = ScoreWeights(w_vpi=1.0, w_pressure=0.0, w_occupancy=0.0,
                     vpi_ref=40.0, vpi_cap=2.0)
    # at the paper's E threshold the VPI term is exactly 1
    assert interference_score(snap(vpi=40.0), w) == pytest.approx(1.0)
    # runaway VPI saturates at the cap instead of dominating unboundedly
    assert interference_score(snap(vpi=4_000.0), w) == pytest.approx(2.0)


def test_score_fallback_without_telemetry():
    w = ScoreWeights()
    assert interference_score(None, w, fallback_occupancy=0.5) == pytest.approx(
        w.w_occupancy * 0.5
    )
    # fallback load is clamped into [0, 1]
    assert interference_score(None, w, fallback_occupancy=7.0) == pytest.approx(
        w.w_occupancy
    )


def test_node_telemetry_snapshot_fields():
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    # long enough (~280 ms/task) to still be running when we snapshot
    long_job = BatchJobSpec(name="long", iterations=1000, mem_lines=1000,
                            mem_dram_frac=0.8, comp_cycles=500_000)
    for _ in range(4):
        sched.submit(long_job)
    cluster.run(until=50_000)
    for node in cluster.nodes:
        t = node.telemetry()
        assert t is not None
        assert t.time == pytest.approx(cluster.env.now, abs=500.0)
        assert t.n_lc_cpus > 0
        assert t.n_containers >= 1  # the batch jobs landed in cgroups
        assert 0.0 <= t.reserved_pressure <= 1.0
        assert 0.0 <= t.batch_occupancy <= 1.0
        assert t.lc_vpi_ema >= 0.0
        assert not t.serving  # no LC service registered in telemetry mode
        assert node.interference_score() >= 0.0
    cluster.stop_daemons()


def test_node_without_daemon_has_no_telemetry():
    cluster = Cluster(n_servers=1)
    assert cluster.nodes[0].telemetry() is None
    assert cluster.nodes[0].interference_score() == pytest.approx(0.0)


def test_busy_node_scores_higher_than_idle():
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    busy, idle = cluster.nodes
    sched = ClusterBatchScheduler(cluster, tasks_per_container=4)
    heavy = BatchJobSpec(name="heavy", iterations=4000, mem_lines=4000,
                         mem_dram_frac=0.9, comp_cycles=2_000_000)
    for _ in range(3):
        sched.submit(heavy, node=busy)
    cluster.run(until=100_000)
    assert busy.interference_score() > idle.interference_score()
    cluster.stop_daemons()


def test_score_policy_places_on_coolest_node():
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    busy = cluster.nodes[0]
    sched = ClusterBatchScheduler(cluster, policy="score",
                                  tasks_per_container=4)
    heavy = BatchJobSpec(name="heavy", iterations=4000, mem_lines=4000,
                         mem_dram_frac=0.9, comp_cycles=2_000_000)
    sched.submit(heavy, node=busy)
    cluster.run(until=100_000)
    job = sched.submit(TINY)
    assert job.node is cluster.nodes[1]
    cluster.stop_daemons()


def test_admission_control_queues_then_drains():
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=10_000.0,
        policy="score",
        admit_threshold=-1.0,  # every node is "too hot": everything queues
        tasks_per_container=2,
    )
    jobs = [sched.submit(TINY) for _ in range(3)]
    assert all(j.queued for j in jobs)
    assert sched.enqueued == 3
    assert sched.admitted == 0

    # relax the threshold: the supervision loop drains the queue FIFO
    sched.admit_threshold = 10.0
    sched.start()
    cluster.run(until=2_000_000)
    assert all(j.finished for j in jobs)
    assert sched.admitted == 3
    starts = [j.started_at for j in jobs]
    assert starts == sorted(starts)
    assert all(j.queue_delay_us > 0 for j in jobs)
    cluster.stop_daemons()


def test_admission_rejects_when_queue_full():
    cluster = Cluster(n_servers=1, holmes_config=HolmesConfig(interval_us=500.0))
    sched = ClusterBatchScheduler(
        cluster,
        policy="score",
        admit_threshold=-1.0,
        max_queue=1,
        tasks_per_container=2,
    )
    j1 = sched.submit(TINY)
    j2 = sched.submit(TINY)
    assert j1.queued and not j1.rejected
    assert j2.rejected and not j2.queued
    assert sched.rejected == 1
    assert j2.queue_delay_us is None
    cluster.stop_daemons()


def test_admission_inactive_under_least_loaded():
    """Thresholds are score-policy knobs; the baseline admits everything."""
    cluster = Cluster(n_servers=1, holmes_config=HolmesConfig(interval_us=500.0))
    sched = ClusterBatchScheduler(
        cluster, policy="least-loaded", admit_threshold=-1.0,
        tasks_per_container=2,
    )
    job = sched.submit(TINY)
    assert not job.queued and job.instance is not None
    assert sched.admitted == 1
    cluster.stop_daemons()


def test_preemptive_relocation_moves_cheapest_job():
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    hot = cluster.nodes[0]
    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=10_000.0,
        policy="score",
        relocate_threshold=0.05,  # trip on any real load
        relocate_margin=0.01,
        tasks_per_container=4,
    )
    heavy = BatchJobSpec(name="heavy", iterations=3000, mem_lines=4000,
                         mem_dram_frac=0.9, comp_cycles=2_000_000)
    old = sched.submit(heavy, node=hot)
    cluster.run(until=60_000)
    fresh = sched.submit(heavy, node=hot)  # least progress: the victim
    sched.start()
    cluster.run(until=200_000)
    sched.stop()
    assert sched.preemptive_relocations >= 1
    assert fresh.node is cluster.nodes[1]
    assert old.node is hot  # the established job was not the one moved
    cluster.stop_daemons()


def test_scheduler_rejects_unknown_policy():
    cluster = Cluster(n_servers=1)
    with pytest.raises(ValueError):
        ClusterBatchScheduler(cluster, policy="random")


def test_telemetry_vpi_ema_tracks_interference():
    """SMT pressure on the LC siblings must lift the exported VPI EMA."""
    cluster = Cluster(n_servers=2, holmes_config=HolmesConfig(interval_us=500.0))
    loaded, quiet = cluster.nodes
    sched = ClusterBatchScheduler(cluster, tasks_per_container=8)
    mem_hog = BatchJobSpec(name="memhog", iterations=4000, mem_lines=8000,
                           mem_dram_frac=0.95, comp_cycles=100_000)
    sched.submit(mem_hog, node=loaded)
    cluster.run(until=150_000)
    t_loaded, t_quiet = loaded.telemetry(), quiet.telemetry()
    assert t_loaded.lc_vpi_ema > t_quiet.lc_vpi_ema
    cluster.stop_daemons()


def test_vpi_ema_config_validation():
    with pytest.raises(ValueError):
        HolmesConfig(vpi_ema_tau_us=0.0)


def test_churn_config_validation():
    from repro.cluster.churn import ChurnConfig

    with pytest.raises(ValueError):
        ChurnConfig(n_jobs=-1)
    with pytest.raises(ValueError):
        ChurnConfig(lc_duty=1.0)
    with pytest.raises(ValueError):
        ChurnConfig(arrival_window_frac=0.0)
    with pytest.raises(ValueError):
        ChurnConfig(phase_min_us=0.0)


def test_job_spec_scaling():
    spec = TINY.scaled(2.5)
    assert spec.iterations == 50
    assert spec.mem_lines == TINY.mem_lines
    assert TINY.scaled(1e-9).iterations == 1  # floored to real work
    with pytest.raises(ValueError):
        TINY.scaled(0.0)


def test_heavy_tailed_sizes_bounded():
    from repro.cluster.churn import ChurnConfig, JobArrivalProcess

    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=1)
    cfg = ChurnConfig(n_jobs=200, size_cap=5.0)
    arrivals = JobArrivalProcess(sched, cfg, 1e6, np.random.default_rng(0))
    factors = [arrivals._size_factor() for _ in range(2000)]
    assert min(factors) >= 1.0
    assert max(factors) <= 5.0
    assert np.mean(factors) > 1.2  # the tail actually contributes
