"""Three-way head-to-head: least-loaded vs score vs predictor.

Two promises are pinned here, both at a scale where the policies
actually separate (8 nodes, 200 jobs, 600 ms):

* **Determinism** -- the merged three-way report is byte-identical
  across process-pool sizes and across calendar kernels.  The predictor
  policy probes its profiles in-process (``default_predictor``), so
  this is also the proof that the probe stage doesn't leak host state
  into sweep results.
* **The headline claim** -- prediction-driven placement beats the
  threshold-Holmes "score" policy on SLO violations on the seed
  workload matrix, while staying within the throughput bar.

Everything here is marked ``slow``: one full sweep triple takes tens of
seconds.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.scheduler import POLICIES
from repro.runner import ExperimentRequest, ExperimentRunner

#: the evaluation scale: large enough that one LC request is ~5e-5 of
#: the violation denominator, so policy gaps aren't quantisation noise.
SCALE = dict(n_nodes=4, n_jobs=80, duration_us=600_000.0, seed=42)
HEADLINE_SCALE = dict(n_nodes=8, n_jobs=200, duration_us=600_000.0,
                      seed=42)


def _run(parallel: int, calendar: str | None = None, scale=None):
    prev = os.environ.get("REPRO_SIM_CALENDAR")
    if calendar is not None:
        os.environ["REPRO_SIM_CALENDAR"] = calendar
    try:
        req = ExperimentRequest.make("cluster", scale or SCALE, seed=42)
        return ExperimentRunner(parallel=parallel, dedupe=True).run([req])
    finally:
        if calendar is not None:
            if prev is None:
                os.environ.pop("REPRO_SIM_CALENDAR", None)
            else:
                os.environ["REPRO_SIM_CALENDAR"] = prev


@pytest.fixture(scope="module")
def serial_report():
    return _run(parallel=1)


@pytest.mark.slow
def test_three_way_report_covers_all_policies(serial_report):
    merged = json.loads(serial_report.merged_bytes())
    [agg] = merged["experiments"].values()
    assert set(agg["policies"]) == set(POLICIES)
    assert "predictor_vs_score" in agg
    # the predictor run carries its provenance: model weights, probe
    # seed and thresholds travel with the result.
    pred = agg["policies"]["predictor"]
    assert pred["slo_violation_ratio"] is not None


@pytest.mark.slow
def test_three_way_byte_identical_across_pool_sizes(serial_report):
    for parallel in (2, 3):
        par = _run(parallel=parallel)
        assert par.merged_bytes() == serial_report.merged_bytes()


@pytest.mark.slow
def test_three_way_byte_identical_across_calendars(serial_report):
    for calendar in ("heap", "wheel"):
        rep = _run(parallel=2, calendar=calendar)
        assert rep.merged_bytes() == serial_report.merged_bytes()


@pytest.mark.slow
def test_predictor_beats_score_on_violations_at_headline_scale():
    """The acceptance claim: on the seed workload matrix the learned
    predictor beats threshold-Holmes on SLO violations, with throughput
    within 20% of the least-loaded baseline."""
    from repro.cluster.sweep import run_cluster_sweep

    base = run_cluster_sweep(policy="least-loaded", **HEADLINE_SCALE)
    score = run_cluster_sweep(policy="score", **HEADLINE_SCALE)
    pred = run_cluster_sweep(policy="predictor", **HEADLINE_SCALE)

    v_base = base["lc"]["slo_violation_ratio"]
    v_score = score["lc"]["slo_violation_ratio"]
    v_pred = pred["lc"]["slo_violation_ratio"]
    # both managed policies beat the load-only baseline...
    assert v_score < v_base
    assert v_pred < v_base
    # ...and prediction beats the reactive threshold policy.
    assert v_pred < v_score
    # throughput bar: winning on violations by starving batch is cheating.
    assert pred["batch"]["completed"] >= 0.8 * base["batch"]["completed"]
    # provenance travels with the predictor payload.
    assert pred["predictor"]["probe_seed"] == 42
    assert all(w >= 0.0 for w in pred["predictor"]["model"]["weights"])
