"""Tests for multi-stage (DAG) batch jobs."""

import numpy as np
import pytest

from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads.dag import (
    SPARK_KMEANS_DAG,
    Stage,
    StagedJobRunner,
    StagedJobSpec,
    TERASORT_DAG,
)


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


TINY_DAG = StagedJobSpec(
    name="tiny",
    stages=(
        Stage("a", tasks=2, mem_lines=500, mem_dram_frac=0.8,
              comp_cycles=100_000),
        Stage("b", tasks=3, mem_lines=300, mem_dram_frac=0.5,
              comp_cycles=200_000, deps=("a",)),
        Stage("c", tasks=1, mem_lines=200, mem_dram_frac=0.5,
              comp_cycles=100_000, deps=("a", "b")),
    ),
)


def test_spec_validation():
    with pytest.raises(ValueError):
        Stage("x", tasks=0, mem_lines=1, mem_dram_frac=0.5, comp_cycles=1)
    with pytest.raises(ValueError):
        StagedJobSpec("dup", stages=(
            Stage("a", 1, 1, 0.5, 1), Stage("a", 1, 1, 0.5, 1),
        ))
    with pytest.raises(ValueError):
        StagedJobSpec("missing", stages=(
            Stage("a", 1, 1, 0.5, 1, deps=("ghost",)),
        ))
    with pytest.raises(ValueError):
        StagedJobSpec("cycle", stages=(
            Stage("a", 1, 1, 0.5, 1, deps=("b",)),
            Stage("b", 1, 1, 0.5, 1, deps=("a",)),
        ))


def test_topological_order():
    order = [s.name for s in TINY_DAG.topological_order()]
    assert order.index("a") < order.index("b") < order.index("c")
    for dag in (SPARK_KMEANS_DAG, TERASORT_DAG):
        order = [s.name for s in dag.topological_order()]
        assert len(order) == len(dag.stages)


def _run_dag(spec, n_workers=4):
    system = small_system()
    runner = StagedJobRunner(spec, system.env, np.random.default_rng(5))
    proc = system.spawn_process(spec.name)
    for i in range(n_workers):
        proc.spawn_thread(runner.worker_body, name=f"w{i}",
                          affinity=set(range(8)))
    system.run(until=10_000_000)
    return system, runner


def test_dag_runs_to_completion():
    system, runner = _run_dag(TINY_DAG)
    assert runner.done.triggered
    assert runner.finished_stages == [s.name for s in
                                      TINY_DAG.topological_order()]


def test_stage_barrier_enforced():
    """No task of stage b starts before every task of stage a ended."""
    system = small_system()
    spec = StagedJobSpec("barrier", stages=(
        Stage("a", tasks=3, mem_lines=2000, mem_dram_frac=0.8,
              comp_cycles=500_000),
        Stage("b", tasks=3, mem_lines=100, mem_dram_frac=0.5,
              comp_cycles=100_000, deps=("a",)),
    ))
    runner = StagedJobRunner(spec, system.env, np.random.default_rng(5))

    starts: list[tuple[str, float]] = []
    ends: list[tuple[str, float]] = []
    orig = runner.worker_body

    def tracking_body(thread):
        while True:
            item = yield from thread.wait(runner._task_queue.get())
            if item is None:
                return
            stage, jitter = item
            starts.append((stage.name, thread.env.now))
            from repro.hw.ops import CompOp, MemOp

            yield from thread.exec(MemOp(
                lines=max(1, int(stage.mem_lines * jitter)),
                dram_frac=stage.mem_dram_frac))
            yield from thread.exec(CompOp(cycles=stage.comp_cycles * jitter))
            ends.append((stage.name, thread.env.now))
            runner._completions.put_nowait(stage.name)

    proc = system.spawn_process("p")
    for i in range(3):
        proc.spawn_thread(tracking_body, name=f"w{i}", affinity=set(range(8)))
    system.run(until=10_000_000)

    last_a_end = max(t for name, t in ends if name == "a")
    first_b_start = min(t for name, t in starts if name == "b")
    assert first_b_start >= last_a_end


def test_fewer_workers_than_tasks():
    """A 1-worker pool still drains every stage sequentially."""
    system, runner = _run_dag(SPARK_KMEANS_DAG, n_workers=1)
    assert runner.done.triggered


def test_more_workers_than_poison_pills_is_safe():
    system, runner = _run_dag(TINY_DAG, n_workers=8)
    assert runner.done.triggered
    # all workers exited (no one stuck waiting forever on the queue)
    proc = system.processes[1]
    assert all(not t.alive for t in proc.threads)


def test_determinism():
    def run_once():
        system, runner = _run_dag(TERASORT_DAG)
        return runner.done.value

    assert run_once() == run_once()
