"""Calendar-equivalence tests: heap and wheel kernels fire identical traces.

The wheel calendar is only a legitimate default if it is *bit-for-bit*
indistinguishable from the reference heap: same firing order, same
``(time, seq)`` at every dispatch, same experiment bytes.  These tests
pin that at three levels:

* a seeded property-based workload (timeouts, recurring timers, events,
  failures, interrupts, cancellations) traced through both kernels and
  through adversarial wheel geometries (odd bucket widths, tiny rings
  that force overflow and wrap-around);
* the lazy-cancellation API that samplers and daemons rely on;
* full-experiment and cluster-sweep payload bytes under heap vs wheel
  and under quiescent tick coalescing on vs off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.export import canonical_dumps
from repro.runner import Cell, execute_cell
from repro.sim import (
    DEFAULT_CALENDAR,
    Environment,
    HeapEnvironment,
    Interrupt,
    PeriodicSampler,
    RecurringTimeout,
    WheelEnvironment,
)

# Wheel geometries under test: the default, an odd non-integral bucket
# width, and a tiny ring whose horizon (16 us) forces most schedules
# through the overflow heap and wraps the cursor many times over.
WHEELS = {
    "default": {},
    "odd-width": {"bucket_us": 7.3, "wheel_slots": 64},
    "tiny-ring": {"bucket_us": 2.0, "wheel_slots": 8},
}

BOTH = ["heap", "wheel"]

# -- property-based trace equivalence ---------------------------------------

# Delay pool mixing zero, sub-bucket, bucket-boundary (exact and one ulp
# off), multi-bucket, and beyond-ring values.
_DELAYS = [
    0.0, 0.1, 0.5, 1.0, 3.7, 7.3, 12.5,
    49.999999, 50.0, 50.000001,
    100.0, 137.0, 513.0, 1024.0, 4999.5, 12345.6,
]

_KINDS = [
    "timeout", "timeout", "timeout", "zero", "recurring", "auto",
    "signal", "fail", "interrupt", "cancelled",
]


def _make_script(seed: int, n_workers: int = 8, n_steps: int = 25):
    """Pre-draw all randomness so both kernels replay the same workload."""
    rng = np.random.default_rng(seed)
    return [
        [
            (
                _KINDS[int(rng.integers(len(_KINDS)))],
                float(_DELAYS[int(rng.integers(len(_DELAYS)))]),
                int(rng.integers(1, 4)),
            )
            for _ in range(n_steps)
        ]
        for _ in range(n_workers)
    ]


def _run_script(env: Environment, script):
    """Interpret the script; return the full dispatch trace."""
    trace = []

    def worker(wid, steps):
        for i, (kind, delay, reps) in enumerate(steps):
            if kind == "timeout":
                v = yield env.timeout(delay, value=(wid, i))
                trace.append((env.now, env._seq, wid, i, "t", v))
            elif kind == "zero":
                yield env.timeout(0.0)
                trace.append((env.now, env._seq, wid, i, "z", None))
            elif kind == "recurring":
                timer = RecurringTimeout(env, delay + 0.5)
                for r in range(reps):
                    yield timer
                    trace.append((env.now, env._seq, wid, i, "r", r))
                    if r + 1 < reps:
                        timer.rearm()
            elif kind == "auto":
                timer = RecurringTimeout(env, delay + 0.5, auto=True)
                for r in range(reps):
                    yield timer
                    trace.append((env.now, env._seq, wid, i, "a", r))
                timer.cancel()
            elif kind == "signal":
                ev = env.event()

                def trigger(ev=ev, delay=delay, tag=(wid, i)):
                    yield env.timeout(delay)
                    ev.succeed(tag)

                env.process(trigger())
                v = yield ev
                trace.append((env.now, env._seq, wid, i, "s", v))
            elif kind == "fail":
                ev = env.event()

                def failer(ev=ev, delay=delay):
                    yield env.timeout(delay)
                    ev.fail(RuntimeError("boom"))

                env.process(failer())
                try:
                    yield ev
                except RuntimeError:
                    trace.append((env.now, env._seq, wid, i, "f", None))
            elif kind == "interrupt":
                me = env.active_process

                def interrupter(me=me, delay=delay):
                    yield env.timeout(delay)
                    if me.is_alive:
                        me.interrupt((wid, i))

                env.process(interrupter())
                try:
                    yield env.timeout(delay + 250.0)
                    trace.append((env.now, env._seq, wid, i, "T", None))
                except Interrupt as err:
                    trace.append((env.now, env._seq, wid, i, "I", err.cause))
            elif kind == "cancelled":
                timer = RecurringTimeout(env, delay + 5.0, auto=True)
                timer.cancel()
                yield env.timeout(1.0)
                trace.append((env.now, env._seq, wid, i, "c", None))

    for wid, steps in enumerate(script):
        env.process(worker(wid, steps), name=f"w{wid}")
    env.run()
    return trace, env.now, env._seq


@pytest.mark.parametrize("geometry", sorted(WHEELS), ids=sorted(WHEELS))
@pytest.mark.parametrize("seed", [1, 7, 20260807])
def test_random_schedules_trace_identical(seed, geometry):
    script = _make_script(seed)
    ref = _run_script(HeapEnvironment(), script)
    got = _run_script(WheelEnvironment(**WHEELS[geometry]), script)
    assert got == ref


def test_random_schedules_trace_identical_nonzero_start():
    script = _make_script(99)
    ref = _run_script(HeapEnvironment(initial_time=123.456), script)
    got = _run_script(
        WheelEnvironment(initial_time=123.456, **WHEELS["odd-width"]), script
    )
    assert got == ref


# -- kernel selection -------------------------------------------------------

def test_environment_dispatches_to_kernel(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_CALENDAR", raising=False)
    assert isinstance(Environment(calendar="heap"), HeapEnvironment)
    assert isinstance(Environment(calendar="wheel"), WheelEnvironment)
    assert Environment().calendar_name == DEFAULT_CALENDAR
    monkeypatch.setenv("REPRO_SIM_CALENDAR", "heap")
    assert isinstance(Environment(), HeapEnvironment)
    # explicit keyword beats the environment variable
    assert isinstance(Environment(calendar="wheel"), WheelEnvironment)


def test_unknown_calendar_rejected():
    with pytest.raises(ValueError):
        Environment(calendar="splay")


def test_wheel_rejects_bad_geometry():
    with pytest.raises(ValueError):
        WheelEnvironment(bucket_us=0.0)
    with pytest.raises(ValueError):
        WheelEnvironment(wheel_slots=3)


# -- lazy cancellation ------------------------------------------------------

@pytest.mark.parametrize("calendar", BOTH)
def test_cancel_drops_pending_entry(calendar):
    env = Environment(calendar=calendar)
    fired = []
    t1 = env.timeout(5.0)
    t1.callbacks.append(lambda e: fired.append("a"))
    t2 = env.timeout(10.0)
    t2.callbacks.append(lambda e: fired.append("b"))
    assert env.cancel(t1) is True
    assert env.cancel(t1) is False  # second cancel is a no-op
    env.run()
    assert fired == ["b"]
    assert env.now == 10.0


@pytest.mark.parametrize("calendar", BOTH)
def test_cancel_after_fire_returns_false(calendar):
    env = Environment(calendar=calendar)
    t = env.timeout(1.0)
    env.run()
    assert env.cancel(t) is False


@pytest.mark.parametrize("calendar", BOTH)
def test_cancelled_auto_timer_lets_run_drain(calendar):
    env = Environment(calendar=calendar)
    timer = RecurringTimeout(env, 50.0, auto=True)
    ticks = []

    def proc():
        for _ in range(3):
            yield timer
            ticks.append(env.now)
        timer.cancel()

    env.process(proc())
    env.run()  # would never return if cancel leaked the armed entry
    assert ticks == [50.0, 100.0, 150.0]
    assert env.peek() == float("inf")


@pytest.mark.parametrize("calendar", BOTH)
def test_skip_to_moves_pending_firing(calendar):
    env = Environment(calendar=calendar)
    timer = RecurringTimeout(env, 10.0, auto=True)
    times = []

    def proc():
        for _ in range(3):
            yield timer
            times.append(env.now)
        timer.cancel()

    def skipper():
        yield env.timeout(5.0)
        timer.skip_to(40.0)

    env.process(proc())
    env.process(skipper())
    env.run()
    assert times == [40.0, 50.0, 60.0]


@pytest.mark.parametrize("calendar", BOTH)
def test_sampler_stop_drops_calendar_entry(calendar):
    env = Environment(calendar=calendar)
    sampler = PeriodicSampler(env, 10.0, lambda now: 1.0)

    def stopper():
        yield env.timeout(35.0)
        sampler.stop()

    env.process(stopper())
    env.run()  # drains because stop() cancelled the armed tick
    assert len(sampler.series) == 3
    assert env.peek() == float("inf")


# -- recurring-timer semantics ---------------------------------------------

@pytest.mark.parametrize("calendar", BOTH)
def test_auto_rearm_matches_manual_rearm(calendar):
    def run(auto: bool) -> list:
        env = Environment(calendar=calendar)
        times = []

        def proc():
            timer = RecurringTimeout(env, 7.0, auto=auto)
            for _ in range(5):
                yield timer
                times.append(env.now)
                if not auto:
                    timer.rearm()
            if auto:
                timer.cancel()

        env.process(proc())
        env.run(until=60.0)
        return times

    assert run(True) == run(False)


def test_auto_timer_rejects_manual_rearm():
    env = Environment()
    timer = RecurringTimeout(env, 5.0, auto=True)
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        timer.rearm()


# -- wheel-specific structure ----------------------------------------------

def test_wheel_overflow_and_wraparound():
    env = WheelEnvironment(bucket_us=1.0, wheel_slots=8)  # 8 us horizon
    log = []

    def proc():
        yield env.timeout(100.0)  # far beyond the ring: overflow heap
        log.append(env.now)
        yield env.timeout(3.0)  # in-ring, after many wraps
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [100.0, 103.0]


def test_wheel_bucket_boundary_ordering_matches_heap():
    delays = [5.0, 4.9999999999, 5.0000000001, 10.0, 40.0, 40.0, 15.0, 0.0]

    def drive(env):
        order = []

        def w(i, d):
            yield env.timeout(d)
            order.append((i, env.now))

        for i, d in enumerate(delays):
            env.process(w(i, d))
        env.run()
        return order

    assert drive(WheelEnvironment(bucket_us=5.0, wheel_slots=8)) == drive(
        HeapEnvironment()
    )


def test_wheel_peek_scans_ring_and_overflow():
    env = WheelEnvironment(bucket_us=1.0, wheel_slots=8)
    far = env.timeout(500.0)
    assert env.peek() == 500.0  # overflow only
    env.timeout(3.0)
    assert env.peek() == 3.0  # ring beats overflow
    urgent = env.timeout(0.0)
    assert env.peek() == 0.0  # current bucket beats both
    env.cancel(urgent)
    assert env.peek() == 3.0  # cancelled entries are skipped
    env.cancel(far)
    env.run()
    assert env.now == 3.0


# -- full-experiment byte identity -----------------------------------------

def _colo_bytes(monkeypatch, calendar: str) -> bytes:
    monkeypatch.setenv("REPRO_SIM_CALENDAR", calendar)
    params = {
        "service": "redis",
        "workload": "a",
        "setting": "holmes",
        "duration_us": 20_000.0,
    }
    return canonical_dumps(
        execute_cell(Cell.make("colocation", params, 42))
    ).encode()


def test_full_experiment_bytes_identical_heap_vs_wheel(monkeypatch):
    assert _colo_bytes(monkeypatch, "heap") == _colo_bytes(monkeypatch, "wheel")


def _sweep_payload(monkeypatch, calendar: str, coalesce: int) -> str:
    from repro.cluster.sweep import run_cluster_sweep

    monkeypatch.setenv("REPRO_SIM_CALENDAR", calendar)
    return canonical_dumps(
        run_cluster_sweep(
            policy="score",
            n_nodes=4,
            n_jobs=10,
            duration_us=60_000.0,
            seed=11,
            coalesce_idle_ticks=coalesce,
        )
    )


def test_cluster_sweep_bytes_identical_across_kernels_and_coalescing(
    monkeypatch,
):
    ref = _sweep_payload(monkeypatch, "heap", 1)
    assert _sweep_payload(monkeypatch, "wheel", 1) == ref
    assert _sweep_payload(monkeypatch, "wheel", 32) == ref
    assert _sweep_payload(monkeypatch, "heap", 32) == ref
