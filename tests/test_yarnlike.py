"""Tests for the Yarn-like NodeManager and continuous job submission."""

import pytest

from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.yarnlike import BATCH_CGROUP_ROOT, ContinuousSubmitter, NodeManager


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


TINY_JOB = BatchJobSpec(
    name="tiny", iterations=5, mem_lines=500, mem_dram_frac=0.8,
    comp_cycles=200_000,
)


def test_launch_creates_cgroup_per_container():
    system = small_system()
    nm = NodeManager(system)
    job = nm.launch_job(TINY_JOB, n_containers=2, tasks_per_container=2)
    children = system.cgroups.list_children(BATCH_CGROUP_ROOT)
    assert len(children) == 2
    for c in job.containers:
        assert system.cgroups.exists(c.cgroup_path)
        assert c.process.alive
        assert len(c.process.threads) == 2


def test_default_cpuset_applied():
    system = small_system()
    nm = NodeManager(system, default_cpuset={4, 5})
    job = nm.launch_job(TINY_JOB)
    for c in job.containers:
        for t in c.process.threads:
            assert t.affinity == frozenset({4, 5})


def test_per_launch_cpuset_override():
    system = small_system()
    nm = NodeManager(system, default_cpuset={4, 5})
    job = nm.launch_job(TINY_JOB, cpuset={6})
    for t in job.containers[0].process.threads:
        assert t.affinity == frozenset({6})


def test_job_completion_detected_and_cgroup_removed():
    system = small_system()
    nm = NodeManager(system)
    job = nm.launch_job(TINY_JOB, tasks_per_container=2)
    path = job.containers[0].cgroup_path
    system.run()
    assert job.finished
    assert job.duration_us > 0
    assert not system.cgroups.exists(path)
    assert nm.completed_count() == 1


def test_kill_job_terminates_quickly():
    system = small_system()
    nm = NodeManager(system)
    big = BatchJobSpec(name="big", iterations=10_000, mem_lines=5000,
                       mem_dram_frac=0.9, comp_cycles=5_000_000)
    job = nm.launch_job(big)

    def killer(env):
        yield env.timeout(1_000.0)
        nm.kill_job(job)

    system.env.process(killer(system.env))
    system.run(until=50_000)
    assert job.finished
    assert job.finished_at < 5_000


def test_tasks_jitter_deterministically():
    def run_once():
        system = small_system()
        nm = NodeManager(system, seed=99)
        job = nm.launch_job(TINY_JOB, tasks_per_container=3)
        system.run()
        return job.duration_us

    assert run_once() == run_once()


def test_continuous_submitter_keeps_jobs_running():
    system = small_system()
    nm = NodeManager(system)
    sub = ContinuousSubmitter(nm, target_concurrent=2, mix=[TINY_JOB],
                              tasks_per_container=2)
    sub.start()
    system.run(until=60_000)
    assert sub.submitted > 4  # several generations replaced
    assert len(nm.running_jobs) == 2


def test_continuous_submitter_stop():
    system = small_system()
    nm = NodeManager(system)
    sub = ContinuousSubmitter(nm, target_concurrent=1, mix=[TINY_JOB],
                              tasks_per_container=1)
    sub.start()
    system.run(until=10_000)
    sub.stop()
    count_at_stop = sub.submitted
    system.run(until=200_000)
    assert sub.submitted == count_at_stop
    assert nm.running_jobs == []


def test_submitter_validation():
    system = small_system()
    nm = NodeManager(system)
    with pytest.raises(ValueError):
        ContinuousSubmitter(nm, target_concurrent=0)
    with pytest.raises(ValueError):
        ContinuousSubmitter(nm, mix=[])
    sub = ContinuousSubmitter(nm, mix=[TINY_JOB])
    sub.start()
    with pytest.raises(RuntimeError):
        sub.start()
    system.run(until=1000)


def test_completed_count_window():
    system = small_system()
    nm = NodeManager(system)
    nm.launch_job(TINY_JOB, tasks_per_container=1)
    system.run()
    end = system.env.now
    assert nm.completed_count(0, end + 1) == 1
    assert nm.completed_count(end + 1) == 0
