"""Unit tests for repro.sim.stores and repro.sim.monitor."""

import pytest

from repro.sim import Environment, PeriodicSampler, Series, Store, QueueFull


def test_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield store.put("item1")

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(0.0, "item1")]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(10.0)
        store.put_nowait("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(10.0, "late")]


def test_fifo_item_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            store.put_nowait(i)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_fifo_getter_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, label, start):
        yield env.timeout(start)
        item = yield store.get()
        got.append((label, item))

    def producer(env):
        yield env.timeout(10.0)
        store.put_nowait("x")
        store.put_nowait("y")

    env.process(consumer(env, "early", 0.0))
    env.process(consumer(env, "later", 1.0))
    env.process(producer(env))
    env.run()
    assert got == [("early", "x"), ("later", "y")]


def test_bounded_put_nowait_raises():
    env = Environment()
    store = Store(env, capacity=1)
    store.put_nowait("a")
    with pytest.raises(QueueFull):
        store.put_nowait("b")


def test_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer(env):
        yield env.timeout(10.0)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a", 0.0), ("got", "a", 10.0), ("b", 10.0)]


def test_get_nowait():
    env = Environment()
    store = Store(env)
    with pytest.raises(LookupError):
        store.get_nowait()
    store.put_nowait(5)
    assert store.get_nowait() == 5
    assert len(store) == 0


def test_len_and_waiting_getters():
    env = Environment()
    store = Store(env)
    store.put_nowait(1)
    store.put_nowait(2)
    assert len(store) == 2
    assert store.waiting_getters == 0
    store.get_nowait()
    store.get_nowait()
    store.get()
    assert store.waiting_getters == 1


def test_series_statistics():
    s = Series("latency")
    for t, v in [(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]:
        s.record(t, v)
    assert s.mean() == 25.0
    assert s.percentile(50) == 25.0
    assert s.window_mean(1, 3) == 25.0
    assert len(s) == 4


def test_series_empty_stats_are_nan():
    import math

    s = Series()
    assert math.isnan(s.mean())
    assert math.isnan(s.percentile(99))
    assert math.isnan(s.window_mean(0, 1))


def test_periodic_sampler_samples_on_schedule():
    env = Environment()
    sampler = PeriodicSampler(env, period=10.0, fn=lambda now: now * 2)

    def stopper(env):
        yield env.timeout(35.0)
        sampler.stop()

    env.process(stopper(env))
    env.run(until=100.0)
    assert list(sampler.series.times) == [10.0, 20.0, 30.0]
    assert list(sampler.series.values) == [20.0, 40.0, 60.0]


def test_periodic_sampler_skips_none():
    env = Environment()
    sampler = PeriodicSampler(
        env, period=1.0, fn=lambda now: now if now > 2.5 else None
    )

    def stopper(env):
        yield env.timeout(5.5)
        sampler.stop()

    env.process(stopper(env))
    env.run(until=10.0)
    assert list(sampler.series.times) == [3.0, 4.0, 5.0]


def test_periodic_sampler_rejects_bad_period():
    env = Environment()
    with pytest.raises(ValueError):
        PeriodicSampler(env, period=0.0, fn=lambda now: 1.0)
