"""Unit tests for the SMT contention model (repro.hw.contention, ops)."""

import pytest

from repro.hw import CompOp, CpuKind, ContentionModel, HWConfig, MemOp
from repro.hw.contention import IDLE


@pytest.fixture
def model():
    return ContentionModel(HWConfig())


def test_idle_sibling_no_inflation(model):
    assert model.mem_latency_multiplier(IDLE) == 1.0
    assert model.comp_latency_multiplier(IDLE) == 1.0


def test_memory_sibling_inflates_memory_latency(model):
    """Fig 2: 1,400us -> ~2,300us per MB, i.e. x ~1.64."""
    mult = model.mem_latency_multiplier(CpuKind(mem=1.0, comp=0.0))
    assert mult == pytest.approx(1.64, abs=0.01)


def test_compute_sibling_inflates_memory_latency_mildly(model):
    """Fig 2 case 6: a compute sibling hurts much less than a memory one."""
    m_comp = model.mem_latency_multiplier(CpuKind(mem=0.0, comp=1.0))
    m_mem = model.mem_latency_multiplier(CpuKind(mem=1.0, comp=0.0))
    assert 1.0 < m_comp < 1.2
    assert m_comp < (m_mem - 1.0) / 2 + 1.0


def test_multiplier_monotone_in_pressure(model):
    prev = 0.0
    for p in [0.0, 0.25, 0.5, 0.75, 1.0]:
        m = model.mem_latency_multiplier(CpuKind(mem=p))
        assert m > prev
        prev = m


def test_compute_contention(model):
    m = model.comp_latency_multiplier(CpuKind(comp=1.0))
    assert m == pytest.approx(1.35, abs=0.01)


def test_bandwidth_flat_below_knee(model):
    """Paper: memory bandwidth is NOT a bottleneck at 32 threads."""
    for _ in range(32):
        model.stream_started()
    assert model.bandwidth_multiplier() == 1.0


def test_bandwidth_engages_beyond_knee(model):
    for _ in range(model.config.bandwidth_knee_streams + 10):
        model.stream_started()
    assert model.bandwidth_multiplier() > 1.0


def test_stream_counting(model):
    model.stream_started()
    model.stream_started()
    model.stream_stopped()
    assert model.active_dram_streams == 1
    model.stream_stopped()
    with pytest.raises(RuntimeError):
        model.stream_stopped()


def test_memop_pressure_scales_with_dram_frac():
    full = MemOp(lines=100, dram_frac=1.0)
    partial = MemOp(lines=100, dram_frac=0.2)
    assert full.mem_pressure == 1.0
    assert 0.0 < partial.mem_pressure < full.mem_pressure
    # sublinear: 20% miss rate still exerts substantial pressure
    assert partial.mem_pressure > 0.2


def test_memop_validation():
    with pytest.raises(ValueError):
        MemOp(lines=0)
    with pytest.raises(ValueError):
        MemOp(lines=10, dram_frac=1.5)


def test_compop_pressure_is_compute():
    op = CompOp(cycles=1000)
    assert op.comp_pressure == 1.0
    assert op.mem_pressure < 0.1
    with pytest.raises(ValueError):
        CompOp(cycles=0)


def test_cpukind_idle_flag():
    assert CpuKind(0, 0).idle
    assert not CpuKind(0.5, 0).idle
