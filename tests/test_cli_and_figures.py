"""Tests for the CLI and the text-figure renderers."""

import numpy as np
import pytest

from repro.analysis.figures import render_bars, render_cdf, render_series
from repro.cli import build_parser, main


# -- figures -------------------------------------------------------------------


def test_render_cdf_basic():
    out = render_cdf(
        {"fast": [10, 20, 30, 40], "slow": [100, 200, 300, 400]},
        width=30, height=6, title="demo",
    )
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "1.00" in lines[1]
    assert "0.00" in lines[6]
    assert "*=fast" in out and "o=slow" in out
    assert "(log x)" in out


def test_render_cdf_empty():
    assert render_cdf({}) == "(no data)"
    assert render_cdf({"x": []}) == "(no data)"


def test_render_cdf_linear():
    out = render_cdf({"a": [1, 2, 3]}, log_x=False, width=20, height=4)
    assert "(lin x)" in out


def test_render_bars():
    out = render_bars({"alone": 0.04, "holmes": 0.73, "perfiso": 0.67},
                      width=20, title="util")
    lines = out.splitlines()
    assert lines[0] == "util"
    # the longest bar belongs to the max value
    holmes_line = next(l for l in lines if "holmes" in l)
    perfiso_line = next(l for l in lines if "perfiso" in l)
    assert holmes_line.count("#") == 20
    assert 0 < perfiso_line.count("#") < 20
    assert render_bars({}) == "(no data)"


def test_render_series_with_threshold():
    t = np.linspace(0, 100_000, 200)
    v = np.concatenate([np.full(100, 20.0), np.full(100, 60.0)])
    out = render_series(t, v, width=40, height=8, threshold=40.0)
    assert " E" in out  # the threshold marker line
    assert "*" in out
    assert render_series([], []) == "(no data)"


# -- CLI ----------------------------------------------------------------------------


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_service():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "cassandra"])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for svc in ("redis", "memcached", "rocksdb", "wiredtiger"):
        assert svc in out
    for wl in "abcdef":
        assert f"workload-{wl}" in out


def test_cli_metric(capsys):
    assert main(["metric"]) == 0
    out = capsys.readouterr().out
    assert "STALLS_MEM_ANY" in out
    assert "selected" in out


def test_cli_colocate_quick(capsys):
    assert main(["colocate", "redis", "-w", "a", "--setting", "alone",
                 "--duration", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "avg latency" in out
    assert "VPI on the LC CPUs" in out


def test_cli_convergence_fast(capsys):
    assert main(["convergence", "--epoch", "0.4", "--step", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "holmes" in out and "caladan" in out
    assert "us" in out and "s" in out
