"""Runner robustness: crashed pool workers, poisoned pools, and the
bounded in-process retry budget.
"""

import os

import pytest

from repro.runner import CellExecutionError, ExperimentRunner
from repro.runner import aggregate as agg_mod
from repro.runner import cells as cells_mod
from repro.runner.aggregate import ExperimentRequest, ExperimentSpec

#: pid of the pytest process; a cell body seeing a different pid is
#: running inside a pool worker.
PARENT_PID = os.getpid()

_FLAKY_FAILURES = {"left": 0}


def _poisoned_cell(params: dict, seed: int) -> dict:
    """Hard-kills any pool worker it runs in (no exception to catch --
    the pool itself breaks); computes normally in the parent."""
    if os.getpid() != PARENT_PID:
        os._exit(1)
    return {"ok": True, "seed": seed, **params}


def _failing_cell(params: dict, seed: int) -> dict:
    raise ValueError("this cell always fails")


def _flaky_cell(params: dict, seed: int) -> dict:
    if _FLAKY_FAILURES["left"] > 0:
        _FLAKY_FAILURES["left"] -= 1
        raise RuntimeError("transient failure")
    return {"ok": True}


_KINDS = {
    "poisoned": _poisoned_cell,
    "failing": _failing_cell,
    "flaky": _flaky_cell,
}


@pytest.fixture
def custom_kinds():
    for name, fn in _KINDS.items():
        cells_mod.CELL_KINDS[name] = fn
        agg_mod.EXPERIMENTS[f"{name}_exp"] = ExperimentSpec(
            f"{name}_exp",
            agg_mod._single_cell(name, ("tag",)),
            agg_mod._agg_passthrough,
        )
    yield
    for name in _KINDS:
        cells_mod.CELL_KINDS.pop(name, None)
        agg_mod.EXPERIMENTS.pop(f"{name}_exp", None)


def test_crashed_worker_is_backfilled_in_parent(custom_kinds):
    runner = ExperimentRunner(parallel=2)
    report = runner.run([ExperimentRequest.make("poisoned_exp", {}, 1)])
    (result,) = report.experiments.values()
    assert result == {"ok": True, "seed": 1}


def test_poisoned_pool_loses_no_benign_cells(custom_kinds):
    # a dying worker breaks the whole pool: every outstanding future
    # fails, including cells that would have computed fine.  All of them
    # must be recovered by the serial backfill.
    requests = [
        ExperimentRequest.make("poisoned_exp", {"tag": f"t{i}"}, i)
        for i in range(4)
    ]
    report = ExperimentRunner(parallel=2).run(requests)
    assert len(report.experiments) == 4
    for i, req in enumerate(sorted(requests, key=lambda r: r.experiment_id)):
        assert report.experiments[req.experiment_id]["ok"] is True
    assert report.n_cell_runs == 4


@pytest.mark.parametrize("parallel", [1, 2])
def test_persistent_failure_raises_with_cell_id(custom_kinds, parallel):
    runner = ExperimentRunner(parallel=parallel, cell_retries=1)
    with pytest.raises(CellExecutionError) as exc_info:
        runner.run([ExperimentRequest.make("failing_exp", {}, 7)])
    assert "failing" in str(exc_info.value)
    assert exc_info.value.cell_id.startswith("failing")
    assert isinstance(exc_info.value.last_error, ValueError)


def test_transient_failure_is_retried(custom_kinds):
    _FLAKY_FAILURES["left"] = 1
    report = ExperimentRunner(parallel=1, cell_retries=2).run(
        [ExperimentRequest.make("flaky_exp", {}, 3)]
    )
    (result,) = report.experiments.values()
    assert result == {"ok": True}
    assert _FLAKY_FAILURES["left"] == 0


def test_zero_retry_budget_fails_on_transient(custom_kinds):
    _FLAKY_FAILURES["left"] = 1
    runner = ExperimentRunner(parallel=1, cell_retries=0)
    with pytest.raises(CellExecutionError):
        runner.run([ExperimentRequest.make("flaky_exp", {}, 3)])


def test_runner_ctor_validation():
    with pytest.raises(ValueError):
        ExperimentRunner(cell_retries=-1)
    with pytest.raises(ValueError):
        ExperimentRunner(parallel=0)
