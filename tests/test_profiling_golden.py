"""Golden-profile regression tests: the profiling stage, byte for byte.

``tests/golden/profile_seed42.json`` is the canonical-JSON payload of
``run_profile_stage(seed=42)`` at the shipped probe defaults.  Any
change to the probe rig, the seed matrix, the contention model, or the
NNLS fit shows up here as a byte diff -- which is the point: profiles
are cached runner cells and scheduler inputs, so silent drift would
invalidate caches and quietly move placement decisions.  Regenerate
deliberately with::

    PYTHONPATH=src python -c "
    from repro.profiling import run_profile_stage
    from repro.analysis.export import canonical_dumps
    print(canonical_dumps(run_profile_stage(seed=42)))
    " > tests/golden/profile_seed42.json
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.export import canonical_dumps
from repro.profiling import run_profile_stage
from repro.runner import ExperimentRequest, ExperimentRunner

GOLDEN = pathlib.Path(__file__).parent / "golden" / "profile_seed42.json"


@pytest.fixture(scope="module")
def stage_payload():
    return run_profile_stage(seed=42)


def test_profile_stage_matches_golden_bytes(stage_payload):
    assert canonical_dumps(stage_payload) == GOLDEN.read_text().rstrip("\n")


def test_profile_stage_repeat_is_byte_identical(stage_payload):
    """Two in-process runs of the same probe: identical bytes, no
    shared-state leakage between probe systems."""
    again = run_profile_stage(seed=42)
    assert canonical_dumps(again) == canonical_dumps(stage_payload)


def test_golden_payload_is_physically_sensible():
    """Coarse sanity on the pinned numbers, so a wrong regeneration is
    caught by meaning and not just by diff size."""
    payload = json.loads(GOLDEN.read_text())
    profiles = payload["profiles"]
    # the LC request is pure DRAM traffic: most memory-sensitive family,
    # and it exerts no compute pressure.
    lc = profiles["lc"]
    assert lc["sens_mem"] == max(p["sens_mem"] for p in profiles.values())
    assert lc["pressure_cpu"] <= min(
        p["pressure_cpu"] for p in profiles.values()
    ) + 1e-9
    # every score is in [0, 1) and the matrix is symmetric in its keys.
    seen = {}
    for row in payload["pairs"]:
        assert 0.0 <= row["score"] < 1.0
        assert row["measured_excess"] >= 0.0
        seen[(row["a"], row["b"])] = row["score"]
    names = sorted(profiles)
    n = len(names)
    assert len(seen) == n * (n + 1) // 2
    # fitted weights non-negative; fit residual small on its own scale.
    assert all(w >= 0.0 for w in payload["model"]["weights"])
    assert payload["fit"]["rmse"] < 0.1


@pytest.mark.slow
def test_profile_cell_parallel_equals_serial(tmp_path, stage_payload):
    """The ``profile`` experiment through the runner: serial, parallel
    and cached runs all byte-identical to the direct stage payload."""
    requests = [ExperimentRequest.make("profile", {}, seed=42)]
    serial = ExperimentRunner(cache=None, parallel=1, dedupe=False).run(
        requests
    )
    from repro.runner import ResultCache

    cache = ResultCache(tmp_path)
    par = ExperimentRunner(cache=cache, parallel=2, dedupe=True).run(
        requests
    )
    assert serial.merged_bytes() == par.merged_bytes()
    warm = ExperimentRunner(cache=ResultCache(tmp_path), parallel=2,
                            dedupe=True).run(requests)
    assert warm.merged_bytes() == serial.merged_bytes()
    # the runner's aggregated payload embeds the same stage payload the
    # golden file pins.
    merged = json.loads(serial.merged_bytes())
    [agg] = merged["experiments"].values()
    assert canonical_dumps(agg) == canonical_dumps(stage_payload)
