"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import Environment, Resource, SimulationError


def test_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_immediate_grant_under_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def proc(env, label):
        req = yield from res.acquire()
        log.append((env.now, label, "got"))
        yield env.timeout(10.0)
        res.release(req)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert log == [(0.0, "a", "got"), (0.0, "b", "got")]


def test_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def proc(env, label, start):
        yield env.timeout(start)
        req = yield from res.acquire()
        grants.append(label)
        yield env.timeout(5.0)
        res.release(req)

    env.process(proc(env, "first", 0.0))
    env.process(proc(env, "second", 1.0))
    env.process(proc(env, "third", 2.0))
    env.run()
    assert grants == ["first", "second", "third"]


def test_release_grants_next_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def proc(env, hold):
        req = yield from res.acquire()
        times.append(env.now)
        yield env.timeout(hold)
        res.release(req)

    env.process(proc(env, 10.0))
    env.process(proc(env, 10.0))
    env.run()
    assert times == [0.0, 10.0]


def test_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        req = yield from res.acquire()
        yield env.timeout(100.0)
        res.release(req)

    def observer(env):
        yield env.timeout(1.0)
        assert res.count == 1
        assert res.queue_length == 0
        res.request()  # never granted during hold
        yield env.timeout(1.0)
        assert res.queue_length == 1

    env.process(holder(env))
    env.process(observer(env))
    env.run(until=50.0)


def test_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder(env):
        req = yield from res.acquire()
        yield env.timeout(10.0)
        res.release(req)

    def canceller(env):
        yield env.timeout(1.0)
        req = res.request()
        yield env.timeout(1.0)
        req.cancel()

    def waiter(env):
        yield env.timeout(3.0)
        req = yield from res.acquire()
        granted.append(env.now)
        res.release(req)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(waiter(env))
    env.run()
    # waiter gets the slot at t=10, not blocked behind a cancelled request
    assert granted == [10.0]


def test_release_ungranted_request_is_cancel():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        req = yield from res.acquire()
        yield env.timeout(10.0)
        res.release(req)

    def proc(env):
        yield env.timeout(1.0)
        req = res.request()  # queued behind holder
        res.release(req)  # withdrawn before grant
        assert res.queue_length == 0

    env.process(holder(env))
    env.process(proc(env))
    env.run()


def test_round_robin_emerges_from_fifo_requeue():
    """Re-requesting after each quantum interleaves two contenders fairly."""
    env = Environment()
    res = Resource(env, capacity=1)
    schedule = []

    def worker(env, label, quanta):
        for _ in range(quanta):
            req = yield from res.acquire()
            schedule.append(label)
            yield env.timeout(1.0)
            res.release(req)

    env.process(worker(env, "A", 3))
    env.process(worker(env, "B", 3))
    env.run()
    assert schedule == ["A", "B", "A", "B", "A", "B"]
