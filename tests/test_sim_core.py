"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.core import NORMAL, URGENT


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)
        assert env.now == 10.0
        yield env.timeout(2.5)
        assert env.now == 12.5

    env.process(proc(env))
    env.run()
    assert env.now == 12.5


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1.0, value="hello")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=35.0)
    assert env.now == 35.0


def test_run_until_past_raises():
    env = Environment(initial_time=100.0)
    with pytest.raises(SimulationError):
        env.run(until=50.0)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99
    assert p.ok


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(5.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_wait_on_process_event():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(3.0)
        return "child-done"

    def parent(env):
        result = yield env.process(child(env))
        results.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert results == [(3.0, "child-done")]


def test_wait_on_already_processed_event():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return "x"

    def parent(env, child_proc):
        yield env.timeout(10.0)
        # child finished long ago; waiting must resume immediately
        v = yield child_proc
        results.append((env.now, v))

    cp = env.process(child(env))
    env.process(parent(env, cp))
    env.run()
    assert results == [(10.0, "x")]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        with pytest.raises(ValueError, match="boom"):
            yield env.process(child(env))
        return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_delivery():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(env, target):
        yield env.timeout(10.0)
        target.interrupt(cause="revoked")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(10.0, "revoked")]


def test_interrupt_then_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(5.0)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(10.0)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [15.0]


def test_interrupt_dead_process_raises():
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)

    v = env.process(victim(env))
    env.run()
    with pytest.raises(SimulationError):
        v.interrupt()


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value="fast")
        t2 = env.timeout(50.0, value="slow")
        got = yield env.any_of([t1, t2])
        results.append((env.now, got[t1]))
        assert t2 not in got

    env.process(proc(env))
    env.run()
    assert results == [(5.0, "fast")]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value=1)
        t2 = env.timeout(50.0, value=2)
        got = yield env.all_of([t1, t2])
        results.append((env.now, got[t1], got[t2]))

    env.process(proc(env))
    env.run()
    assert results == [(50.0, 1, 2)]


def test_empty_condition_fires_immediately():
    env = Environment()

    def proc(env):
        got = yield env.all_of([])
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_non_event_raises():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    # the process Initialize event is scheduled at t=0
    assert env.peek() == 0.0
    env.run()
    assert env.peek() == float("inf")


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(iter([1, 2, 3]))


def test_urgent_beats_normal_at_same_time():
    env = Environment()
    order = []
    ev_n = env.event()
    ev_u = env.event()
    ev_n.callbacks.append(lambda e: order.append("normal"))
    ev_u.callbacks.append(lambda e: order.append("urgent"))
    ev_n.succeed(priority=NORMAL)
    ev_u.succeed(priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_deterministic_many_processes():
    """Two identical runs must produce identical event orderings."""

    def run_once():
        env = Environment()
        order = []

        def proc(env, i):
            for k in range(5):
                yield env.timeout((i * 7 + k * 3) % 11 + 1)
                order.append((env.now, i, k))

        for i in range(20):
            env.process(proc(env, i))
        env.run()
        return order

    assert run_once() == run_once()
