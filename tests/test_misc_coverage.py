"""Small behaviours not covered elsewhere."""

import pytest

from repro.hw import DiskOp, HWConfig, MemOp
from repro.oskernel import System
from repro.workloads.kv.common import ServiceCosts
from repro.ycsb.workloads import Query


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def test_service_costs_overrides():
    base = ServiceCosts()
    tweaked = base.with_overrides(read_cycles=1.0, net_overhead_us=0.0)
    assert tweaked.read_cycles == 1.0
    assert tweaked.net_overhead_us == 0.0
    assert tweaked.read_lines == base.read_lines  # untouched fields kept
    assert base.read_cycles != 1.0  # frozen original unchanged


def test_thread_exec_dispatches_diskop():
    system = small_system()
    done = []

    def body(thread):
        yield from thread.exec(DiskOp(nbytes=4096))
        done.append(thread.env.now)

    system.spawn_process("p").spawn_thread(body, affinity={0})
    system.run()
    assert done and done[0] > 0
    assert system.server.disk.reads == 1


def test_thread_exec_rejects_unknown_op():
    system = small_system()

    def body(thread):
        yield from thread.exec("not an op")

    system.spawn_process("p").spawn_thread(body, affinity={0})
    with pytest.raises(TypeError):
        system.run()


def test_thread_quantum_validation():
    system = small_system()
    proc = system.spawn_process("p")
    with pytest.raises(ValueError):
        proc.spawn_thread(lambda th: iter(()), affinity={0}, quantum_us=0.0)


def test_system_quantum_validation():
    with pytest.raises(ValueError):
        System(quantum_us=-1.0)


def test_sched_getaffinity():
    system = small_system()
    proc = system.spawn_process("p")

    def body(thread):
        yield from thread.sleep(100.0)

    t = proc.spawn_thread(body, affinity={3, 4})
    assert system.sched_getaffinity(t.tid) == frozenset({3, 4})
    with pytest.raises(KeyError):
        system.sched_getaffinity(9999)
    system.run()


def test_query_defaults():
    q = Query(op="read", key=5)
    assert q.value_bytes == 1000
    assert q.scan_len == 1


def test_memop_store_frac_none_uses_config_default():
    system = small_system()

    def body(thread):
        yield from thread.exec(MemOp(lines=1000, dram_frac=0.5))

    system.spawn_process("p").spawn_thread(body, affinity={0})
    system.run()
    from repro.hw.events import INSTR_LOAD, INSTR_STORE

    loads = system.server.counters.read(0, INSTR_LOAD)
    stores = system.server.counters.read(0, INSTR_STORE)
    assert stores / loads == pytest.approx(
        system.server.config.stores_per_line
    )


def test_process_thread_lcpus_view():
    system = small_system()
    proc = system.spawn_process("p")

    def body(thread):
        yield from thread.sleep(10.0)

    proc.spawn_thread(body, affinity={1, 2})
    proc.spawn_thread(body, affinity={2, 3})
    assert proc.thread_lcpus() == {1, 2, 3}
    system.run()
    assert proc.thread_lcpus() == set()  # no live threads


def test_run_until_and_now_passthrough():
    system = small_system()
    system.run(until=123.0)
    assert system.now == 123.0
