"""Unit tests for the cgroup tree and usage accounting."""

import pytest

from repro.hw import CompOp, HWConfig
from repro.oskernel import System
from repro.oskernel.accounting import CumulativeUsage, UsageTracker


@pytest.fixture
def system():
    return System(config=HWConfig())


def test_create_and_get(system):
    g = system.cgroups.create("/batch/container_01")
    assert g.path == "/batch/container_01"
    assert system.cgroups.get("/batch/container_01") is g
    assert system.cgroups.get("/batch").children["container_01"] is g


def test_create_is_mkdir_p(system):
    a = system.cgroups.create("/a/b/c")
    b = system.cgroups.create("/a/b/c")
    assert a is b


def test_get_missing_raises(system):
    with pytest.raises(KeyError):
        system.cgroups.get("/nope")


def test_relative_path_rejected(system):
    with pytest.raises(ValueError):
        system.cgroups.create("batch")


def test_list_children_sorted(system):
    system.cgroups.create("/batch/c2")
    system.cgroups.create("/batch/c1")
    assert system.cgroups.list_children("/batch") == ["c1", "c2"]


def test_remove_rules(system):
    system.cgroups.create("/batch/c1")
    with pytest.raises(ValueError):
        system.cgroups.remove("/batch")  # has children
    system.cgroups.remove("/batch/c1")
    assert system.cgroups.list_children("/batch") == []
    with pytest.raises(ValueError):
        system.cgroups.remove("/")


def test_attach_applies_cpuset(system):
    g = system.cgroups.create("/batch/c1")
    g.set_cpuset({4, 5})
    proc = system.spawn_process("job")

    def body(thread):
        yield from thread.exec(CompOp(cycles=240_000))

    t = proc.spawn_thread(body)  # affinity defaults to all
    g.attach(proc)
    assert t.affinity == frozenset({4, 5})
    system.run()
    assert t.last_lcpu in {4, 5}


def test_spawn_into_cgroup_inherits_cpuset(system):
    g = system.cgroups.create("/batch/c2")
    g.set_cpuset({7})
    proc = system.spawn_process("job", cgroup_path="/batch/c2")

    def body(thread):
        yield from thread.exec(CompOp(cycles=240_000))

    t = proc.spawn_thread(body)
    assert t.affinity == frozenset({7})
    system.run()
    assert t.last_lcpu == 7


def test_cpuset_change_moves_running_threads(system):
    g = system.cgroups.create("/batch/c3")
    g.set_cpuset({0})
    proc = system.spawn_process("job", cgroup_path="/batch/c3")
    seen = set()

    def body(thread):
        for _ in range(40):
            yield from thread.exec(CompOp(cycles=120_000))
            seen.add(thread.last_lcpu)

    proc.spawn_thread(body)

    def mover(env):
        yield env.timeout(500.0)
        g.set_cpuset({9})

    system.env.process(mover(system.env))
    system.run()
    assert seen == {0, 9}


def test_cpuset_inheritance(system):
    parent = system.cgroups.create("/batch")
    child = system.cgroups.create("/batch/c4")
    parent.set_cpuset({2, 3})
    assert child.effective_cpuset() == frozenset({2, 3})
    child.set_cpuset({2})
    assert child.effective_cpuset() == frozenset({2})
    # parent change no longer affects the child with its own cpuset
    parent.set_cpuset({4, 5})
    assert child.effective_cpuset() == frozenset({2})


def test_parent_cpuset_change_reapplies_to_inheriting_child(system):
    parent = system.cgroups.create("/batch")
    child = system.cgroups.create("/batch/c5")
    parent.set_cpuset({0})
    proc = system.spawn_process("job", cgroup_path="/batch/c5")

    def body(thread):
        yield from thread.sleep(1000.0)

    t = proc.spawn_thread(body)
    assert t.affinity == frozenset({0})
    parent.set_cpuset({11})
    assert t.affinity == frozenset({11})
    system.run()


def test_cpuset_validation(system):
    g = system.cgroups.create("/x")
    with pytest.raises(ValueError):
        g.set_cpuset(set())
    with pytest.raises(ValueError):
        g.set_cpuset({1000})


def test_process_detaches_from_cgroup_on_exit(system):
    g = system.cgroups.create("/batch/c6")
    proc = system.spawn_process("job", cgroup_path="/batch/c6")

    def body(thread):
        yield from thread.exec(CompOp(cycles=240_000))

    proc.spawn_thread(body, affinity={0})
    assert g.pids() == [proc.pid]
    system.run()
    assert g.pids() == []


def test_walk(system):
    system.cgroups.create("/a/b")
    system.cgroups.create("/a/c")
    paths = [g.path for g in system.cgroups.root.walk()]
    assert paths == ["/", "/a", "/a/b", "/a/c"]


def test_usage_tracker_windows(system):
    def body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))  # 1000us on lcpu 0

    proc = system.spawn_process("p")
    proc.spawn_thread(body, affinity={0})

    tracker = UsageTracker(system.env, system.server)
    samples = []

    def monitor(env):
        for _ in range(4):
            yield env.timeout(500.0)
            samples.append(tracker.sample())

    system.env.process(monitor(system.env))
    system.run()
    # busy for the first two windows, idle afterwards
    assert samples[0][0] == pytest.approx(1.0, abs=0.05)
    assert samples[1][0] == pytest.approx(1.0, abs=0.05)
    assert samples[2][0] == pytest.approx(0.0, abs=0.05)
    assert samples[0][1] == 0.0  # other lcpus idle


def test_cumulative_usage(system):
    def body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))

    proc = system.spawn_process("p")
    proc.spawn_thread(body, affinity={0})
    usage = CumulativeUsage(system.env, system.server)
    system.run(until=2000.0)
    n = system.server.topology.n_lcpus
    assert usage.average() == pytest.approx(0.5 / n, rel=0.1)
    assert usage.per_cpu()[0] == pytest.approx(0.5, rel=0.05)
