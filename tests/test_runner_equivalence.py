"""Parallel runner == serial runner, byte for byte.

Three representative experiments (a figure triple, an SLO derivation over
the same triple, and an E-threshold sensitivity sweep) are run through
the legacy serial path (no cache, no dedupe, one process) and through the
pooled runner under three cache regimes: cold, warm, and deliberately
corrupted.  The merged output must be byte-identical in every case, and
corrupted entries must be detected via the payload hash and recomputed —
never trusted.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    ExperimentRequest,
    ExperimentRunner,
    ResultCache,
)

#: short horizon: equivalence is about plumbing, not simulation fidelity.
DURATION_US = 15_000.0


def _requests() -> list[ExperimentRequest]:
    colo = {"service": "redis", "workload": "a", "duration_us": DURATION_US}
    return [
        ExperimentRequest.make("compare", colo),
        ExperimentRequest.make("slo", colo),
        ExperimentRequest.make(
            "sensitivity", {**colo, "e_values": (50.0, 70.0)}
        ),
    ]


@pytest.fixture(scope="module")
def serial_report():
    return ExperimentRunner(cache=None, parallel=1, dedupe=False).run(
        _requests()
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("runner-cache")


@pytest.mark.slow
def test_parallel_cold_cache_equals_serial(serial_report, cache_dir):
    cache = ResultCache(cache_dir)
    par = ExperimentRunner(cache=cache, parallel=2, dedupe=True).run(
        _requests()
    )
    assert par.merged_bytes() == serial_report.merged_bytes()
    # the three experiments share the alone/holmes/perfiso triple: five
    # unique cells (triple + two extra E-holmes) vs nine serial executions
    assert par.n_cell_runs == 5
    assert serial_report.n_cell_runs == 9
    assert cache.stats.misses == 5
    assert cache.stats.writes == 5
    assert cache.stats.corrupted == 0


@pytest.mark.slow
def test_parallel_warm_cache_equals_serial(serial_report, cache_dir):
    cache = ResultCache(cache_dir)
    par = ExperimentRunner(cache=cache, parallel=2, dedupe=True).run(
        _requests()
    )
    assert par.merged_bytes() == serial_report.merged_bytes()
    assert par.n_cell_runs == 0
    assert cache.stats.hits == 5
    assert cache.stats.misses == 0


@pytest.mark.slow
def test_corrupted_cache_detected_and_recomputed(serial_report, cache_dir):
    entries = sorted(cache_dir.glob("*.json"))
    assert len(entries) == 5

    # tamper with one payload but keep its recorded hash: the entry still
    # parses, so only hash verification can catch it
    tampered = entries[0]
    entry = json.loads(tampered.read_text())
    entry["payload"]["avg_cpu_utilization"] = 0.123456789
    tampered.write_text(json.dumps(entry))

    # and truncate another one outright
    truncated = entries[1]
    truncated.write_text(truncated.read_text()[: 40])

    cache = ResultCache(cache_dir)
    par = ExperimentRunner(cache=cache, parallel=2, dedupe=True).run(
        _requests()
    )
    assert par.merged_bytes() == serial_report.merged_bytes()
    assert cache.stats.corrupted == 2
    assert cache.stats.hits == 3
    assert par.n_cell_runs == 2  # both bad entries recomputed
    assert cache.stats.writes == 2

    # the rewritten entries verify again on the next pass
    cache2 = ResultCache(cache_dir)
    again = ExperimentRunner(cache=cache2, parallel=2, dedupe=True).run(
        _requests()
    )
    assert again.merged_bytes() == serial_report.merged_bytes()
    assert cache2.stats.hits == 5
    assert cache2.stats.corrupted == 0


def test_wrong_key_entry_is_not_trusted(tmp_path):
    """An entry whose stored key mismatches its filename/key is rejected."""
    from repro.runner import Cell, cell_key

    cell = Cell.make(
        "colocation",
        {"service": "redis", "workload": "a", "setting": "alone",
         "duration_us": 5_000.0},
    )
    cache = ResultCache(tmp_path)
    key = cell_key(cell)
    bogus = {
        "key": "not-the-right-key",
        "payload_sha256": "0" * 64,
        "payload": {"queries": 1},
    }
    cache.path_for(key).write_text(json.dumps(bogus))
    assert cache.get(cell) is None
    assert cache.stats.corrupted == 1
