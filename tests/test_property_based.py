"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import pearson, percentile_summary, violation_ratio
from repro.hw import CpuKind, ContentionModel, HWConfig, Topology
from repro.hw.counters import CounterEngine
from repro.hw.events import INSTR_LOAD, INSTR_STORE, STALLS_MEM_ANY
from repro.sim import Environment
from repro.workloads.kv.btree import BTree
from repro.workloads.kv.cache import LRUCache
from repro.workloads.kv.lsm import LSMTree
from repro.ycsb.distributions import ScrambledZipfianGenerator, ZipfianGenerator


# -- simulation kernel -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=40))
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone_under_any_timeout_set(delays):
    """The simulation clock never goes backwards."""
    env = Environment()
    observed = []

    def proc(env, d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.tuples(st.floats(0.1, 1000.0), st.floats(0.1, 1000.0)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_resource_never_oversubscribed(jobs):
    """A capacity-1 resource runs at most one holder at any instant."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)
    active = [0]
    max_active = [0]

    def proc(env, start, hold):
        yield env.timeout(start)
        req = yield from res.acquire()
        active[0] += 1
        max_active[0] = max(max_active[0], active[0])
        yield env.timeout(hold)
        active[0] -= 1
        res.release(req)

    for start, hold in jobs:
        env.process(proc(env, start, hold))
    env.run()
    assert max_active[0] <= 1
    assert active[0] == 0


# -- topology --------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1,
                                                          max_value=32))
@settings(max_examples=40, deadline=None)
def test_topology_partition_invariants(sockets, cores):
    topo = Topology(HWConfig(sockets=sockets, cores_per_socket=cores))
    lcpus = list(topo.all_lcpus())
    # sibling() is a fixed-point-free involution partitioning the lcpus
    assert sorted(topo.sibling(c) for c in lcpus) == lcpus
    for c in lcpus:
        assert topo.sibling(c) != c
        assert topo.sibling(topo.sibling(c)) == c
        assert topo.core_of(c) == topo.core_of(topo.sibling(c))
    # non_siblings_of(S) never intersects S or its siblings
    subset = set(lcpus[:: max(1, len(lcpus) // 3)])
    non_sib = topo.non_siblings_of(subset)
    assert not (non_sib & subset)
    assert not (non_sib & topo.siblings_of(subset))


# -- contention model ----------------------------------------------------------------


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_contention_multipliers_bounded_and_monotone(mem, comp):
    model = ContentionModel(HWConfig())
    kind = CpuKind(mem=mem, comp=comp)
    m = model.mem_latency_multiplier(kind)
    c = model.comp_latency_multiplier(kind)
    assert 1.0 <= m <= 1.8
    assert 1.0 <= c <= 1.6
    # adding pressure never reduces a multiplier
    more = CpuKind(mem=min(1.0, mem + 0.1), comp=comp)
    assert model.mem_latency_multiplier(more) >= m


# -- counters ------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=100_000),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=1.8),
)
@settings(max_examples=60, deadline=None)
def test_counters_non_negative_and_additive(lines, dram_frac, mult):
    engine = CounterEngine(HWConfig(), 2, np.random.default_rng(0))
    engine.account_mem(0, lines, dram_frac, mult)
    snap = engine.snapshot(0)
    assert snap[STALLS_MEM_ANY] >= 0
    assert snap[INSTR_LOAD] == lines
    assert snap[INSTR_STORE] >= 0
    # accruing twice doubles the instruction counters exactly
    engine2 = CounterEngine(HWConfig(), 2, np.random.default_rng(0))
    engine2.account_mem(0, lines, dram_frac, mult)
    engine2.account_mem(0, lines, dram_frac, mult)
    assert engine2.read(0, INSTR_LOAD) == 2 * lines


# -- LRU cache ------------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 50), st.booleans()), max_size=200),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_lru_never_exceeds_capacity_and_matches_model(ops, capacity):
    """The LRU tracks a reference model implemented with a list."""
    cache = LRUCache(capacity)
    model: list[int] = []  # most-recent last
    for key, is_put in ops:
        if is_put:
            cache.put(key, key)
            if key in model:
                model.remove(key)
            model.append(key)
            if len(model) > capacity:
                model.pop(0)
        else:
            got = cache.get(key)
            if key in model:
                assert got == key
                model.remove(key)
                model.append(key)
            else:
                assert got is None
        assert len(cache) == len(model) <= capacity
    assert sorted(k for k, _ in cache.items()) == sorted(model)


# -- LSM tree ------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=300), max_size=300),
       st.integers(min_value=2, max_value=16))
@settings(max_examples=40, deadline=None)
def test_lsm_never_loses_keys(puts, memtable_entries):
    """Every inserted key stays findable through rotations, flushes and
    compactions, and L1 stays sorted and non-overlapping."""
    lsm = LSMTree(memtable_entries=memtable_entries, l0_compaction_trigger=2)
    lsm.bulk_load(50)
    inserted = set(range(50))
    for key in puts:
        imm = lsm.put(key)
        inserted.add(key)
        if imm is not None:
            lsm.flush(imm)
        if lsm.needs_compaction:
            l0, l1 = lsm.pick_compaction()
            lsm.apply_compaction(l0, l1)
    for key in inserted:
        assert lsm.get(key).location != "missing", key
    assert lsm.total_entries() == len(inserted)
    for a, b in zip(lsm.level1, lsm.level1[1:]):
        assert a.max_key < b.min_key


# -- B-tree ----------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
@settings(max_examples=40, deadline=None)
def test_btree_put_get_roundtrip(keys):
    bt = BTree(keys_per_page=8)
    for k in keys:
        bt.put(k)
    for k in keys:
        page = bt.get(k)
        assert page is not None
        assert page.page_id == k // 8


# -- YCSB distributions ----------------------------------------------------------------


@given(st.integers(min_value=2, max_value=100_000),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_zipfian_draws_in_range(n, seed):
    rng = np.random.default_rng(seed)
    z = ZipfianGenerator(n, rng)
    s = ScrambledZipfianGenerator(n, rng)
    for _ in range(50):
        assert 0 <= z.next() < n
        assert 0 <= s.next() < n


# -- analysis --------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_pearson_perfect_on_affine(xs):
    from hypothesis import assume

    # require meaningful relative spread; nearly-identical large values
    # make the correlation numerically ill-defined (pure cancellation)
    assume(np.std(xs) > 1e-6 * (abs(np.mean(xs)) + 1.0))
    ys = [2.5 * x + 3.0 for x in xs]
    assert abs(pearson(xs, ys) - 1.0) < 1e-6
    ys_neg = [-1.5 * x for x in xs]
    assert abs(pearson(xs, ys_neg) + 1.0) < 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=200),
       st.floats(min_value=0.1, max_value=1e6))
@settings(max_examples=60, deadline=None)
def test_violation_ratio_bounds(lats, slo):
    r = violation_ratio(lats, slo)
    assert 0.0 <= r <= 1.0
    assert violation_ratio(lats, 2e6) == 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=100))
@settings(max_examples=40, deadline=None)
def test_percentile_summary_ordering(lats):
    s = percentile_summary(lats)
    assert s["p50"] <= s["p70"] <= s["p80"] <= s["p90"] <= s["p99"]
    assert min(lats) - 1e-9 <= s["mean"] <= max(lats) + 1e-9


# -- scheduler invariants under random interleavings ------------------------------
#
# The scheduler is driven directly with fabricated MonitorSamples: random
# per-tick VPI/usage vectors, serving flags and container launch/exit
# events, decoupled from any workload.  Whatever the interleaving, the
# paper's structural guarantees must hold after every tick.

_N_LCPUS = 16  # 1 socket x 8 SMT-2 cores


def _fresh_scheduler():
    from repro.core.config import HolmesConfig
    from repro.core.monitor import MetricMonitor
    from repro.core.scheduler import HolmesScheduler
    from repro.oskernel import System

    system = System(config=HWConfig(sockets=1, cores_per_socket=8))
    cfg = HolmesConfig(n_reserved=4)
    monitor = MetricMonitor(system, cfg)
    return system, cfg, monitor, HolmesScheduler(system, cfg, monitor)


def _all_batch_cpus(monitor):
    """Every logical CPU any batch container may currently run on."""
    cpus: set[int] = set()
    for info in monitor.containers.values():
        cpus |= info.cpus | info.sibling_grants
    return cpus


def _grant_set(monitor):
    return {
        (info.name, sib)
        for info in monitor.containers.values()
        for sib in info.sibling_grants
    }


def _drive(ticks):
    """Apply fabricated ticks; yield state snapshots for invariant checks."""
    from types import SimpleNamespace

    from repro.core.monitor import ContainerInfo, MonitorSample

    system, cfg, monitor, sched = _fresh_scheduler()
    env = system.env
    n_launched = 0
    for dt, serving, action, vpi, usage in ticks:
        env.timeout(dt)
        env.run()
        now = env.now
        new, gone = [], []
        if action == "launch":
            name = f"c{n_launched}"
            n_launched += 1
            cg = system.cgroups.create(f"{cfg.batch_cgroup_root}/{name}")
            info = ContainerInfo(name=name, cgroup=cg, discovered_at=now)
            monitor.containers[name] = info
            new.append(info)
        elif action == "exit" and monitor.containers:
            gone.append(monitor.containers.pop(sorted(monitor.containers)[0]))
        vpi_arr = np.asarray(vpi, dtype=float)
        usage_arr = np.asarray(usage, dtype=float)
        lc_before = list(sched.lc_cpus)
        grants_before = _grant_set(monitor)
        sample = MonitorSample(
            time=now,
            usage=usage_arr,
            usage_ema=usage_arr,
            vpi=vpi_arr,
            core_vpi=np.zeros(_N_LCPUS // 2),
            new_containers=new,
            gone_containers=gone,
            lc_statuses=[SimpleNamespace(serving=serving)],
        )
        sched.tick(sample)
        yield {
            "system": system,
            "cfg": cfg,
            "monitor": monitor,
            "sched": sched,
            "now": now,
            "serving": serving,
            "vpi": vpi_arr,
            "lc_before": lc_before,
            "grants_before": grants_before,
            "launched": bool(new),
        }


_tick_st = st.tuples(
    st.floats(min_value=100.0, max_value=30_000.0),              # dt (us)
    st.booleans(),                                               # serving
    st.sampled_from(["none", "none", "launch", "exit"]),
    st.lists(st.floats(0.0, 100.0), min_size=_N_LCPUS, max_size=_N_LCPUS),
    st.lists(st.floats(0.0, 1.0), min_size=_N_LCPUS, max_size=_N_LCPUS),
)


@given(st.lists(_tick_st, min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_reserved_floor_never_violated(ticks):
    """The LC CPU set always contains the reserved 4-core floor, and never
    two hyperthread siblings of the same physical core."""
    for s in _drive(ticks):
        sched, topo = s["sched"], s["sched"].topology
        assert set(sched.reserved) <= set(sched.lc_cpus)
        assert len(sched.lc_cpus) >= s["cfg"].n_reserved
        for lc in sched.lc_cpus:
            assert topo.sibling(lc) not in set(sched.lc_cpus)


@given(st.lists(_tick_st, min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_high_vpi_sibling_never_shared_with_batch(ticks):
    """While serving, an LC CPU observed at VPI >= E never shares its
    physical core with a batch container after the tick."""
    for s in _drive(ticks):
        if not s["serving"]:
            continue
        sched, topo = s["sched"], s["sched"].topology
        batch = _all_batch_cpus(s["monitor"])
        for lc in s["lc_before"]:
            if s["vpi"][lc] >= sched.threshold:
                assert topo.sibling(lc) not in batch, (
                    f"batch on sibling of hot LC cpu {lc}"
                )


@given(st.lists(_tick_st, min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_sibling_regrant_respects_hold_down(ticks):
    """While serving, Algorithm 2 only re-grants an LC sibling after the
    VPI has stayed below E for the hold-down S.  (Ticks that launch a
    container are excluded: Algorithm 1's spill path may legitimately
    grant a calm sibling at launch, independent of S.)"""
    for s in _drive(ticks):
        if not s["serving"] or s["launched"]:
            continue
        sched, cfg = s["sched"], s["cfg"]
        new_grants = _grant_set(s["monitor"]) - s["grants_before"]
        for _name, sib in new_grants:
            lc = sched.topology.sibling(sib)
            last_high = sched._last_high.get(lc, -np.inf)
            assert s["now"] - last_high >= cfg.s_hold_us, (
                f"sibling {sib} re-granted {s['now'] - last_high:.0f} us "
                f"after high VPI on {lc} (S={cfg.s_hold_us:.0f})"
            )


def test_hold_down_sequence_directed():
    """Deterministic walk through the dealloc -> hold-down -> regrant cycle."""
    from types import SimpleNamespace

    from repro.core.monitor import ContainerInfo, MonitorSample

    system, cfg, monitor, sched = _fresh_scheduler()
    env = system.env
    topo = sched.topology

    def tick(dt, serving, vpi_value, new=()):
        env.timeout(dt)
        env.run()
        sched.tick(MonitorSample(
            time=env.now,
            usage=np.full(_N_LCPUS, 0.2),
            usage_ema=np.full(_N_LCPUS, 0.2),
            vpi=np.full(_N_LCPUS, float(vpi_value)),
            core_vpi=np.zeros(_N_LCPUS // 2),
            new_containers=list(new),
            gone_containers=[],
            lc_statuses=[SimpleNamespace(serving=serving)],
        ))

    cg = system.cgroups.create(f"{cfg.batch_cgroup_root}/c0")
    info = ContainerInfo(name="c0", cgroup=cg, discovered_at=env.now)
    monitor.containers["c0"] = info

    # idle: every LC sibling is granted to the lone batch container
    tick(50.0, serving=False, vpi_value=0.0, new=[info])
    sibs = {topo.sibling(lc) for lc in sched.lc_cpus}
    assert info.sibling_grants == sibs

    # traffic + high VPI: every sibling is deallocated
    tick(50.0, serving=True, vpi_value=cfg.e_threshold + 10.0)
    t_high = env.now
    assert info.sibling_grants == set()

    # calm but within the hold-down: still nothing granted
    tick(cfg.s_hold_us * 0.5, serving=True, vpi_value=0.0)
    assert env.now - t_high < cfg.s_hold_us
    assert info.sibling_grants == set()

    # calm past the hold-down: siblings come back
    tick(cfg.s_hold_us, serving=True, vpi_value=0.0)
    assert env.now - t_high >= cfg.s_hold_us
    assert info.sibling_grants == sibs
