"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import pearson, percentile_summary, violation_ratio
from repro.hw import CpuKind, ContentionModel, HWConfig, Topology
from repro.hw.counters import CounterEngine
from repro.hw.events import INSTR_LOAD, INSTR_STORE, STALLS_MEM_ANY
from repro.sim import Environment
from repro.workloads.kv.btree import BTree
from repro.workloads.kv.cache import LRUCache
from repro.workloads.kv.lsm import LSMTree
from repro.ycsb.distributions import ScrambledZipfianGenerator, ZipfianGenerator


# -- simulation kernel -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=40))
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone_under_any_timeout_set(delays):
    """The simulation clock never goes backwards."""
    env = Environment()
    observed = []

    def proc(env, d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.tuples(st.floats(0.1, 1000.0), st.floats(0.1, 1000.0)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_resource_never_oversubscribed(jobs):
    """A capacity-1 resource runs at most one holder at any instant."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)
    active = [0]
    max_active = [0]

    def proc(env, start, hold):
        yield env.timeout(start)
        req = yield from res.acquire()
        active[0] += 1
        max_active[0] = max(max_active[0], active[0])
        yield env.timeout(hold)
        active[0] -= 1
        res.release(req)

    for start, hold in jobs:
        env.process(proc(env, start, hold))
    env.run()
    assert max_active[0] <= 1
    assert active[0] == 0


# -- topology --------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1,
                                                          max_value=32))
@settings(max_examples=40, deadline=None)
def test_topology_partition_invariants(sockets, cores):
    topo = Topology(HWConfig(sockets=sockets, cores_per_socket=cores))
    lcpus = list(topo.all_lcpus())
    # sibling() is a fixed-point-free involution partitioning the lcpus
    assert sorted(topo.sibling(c) for c in lcpus) == lcpus
    for c in lcpus:
        assert topo.sibling(c) != c
        assert topo.sibling(topo.sibling(c)) == c
        assert topo.core_of(c) == topo.core_of(topo.sibling(c))
    # non_siblings_of(S) never intersects S or its siblings
    subset = set(lcpus[:: max(1, len(lcpus) // 3)])
    non_sib = topo.non_siblings_of(subset)
    assert not (non_sib & subset)
    assert not (non_sib & topo.siblings_of(subset))


# -- contention model ----------------------------------------------------------------


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_contention_multipliers_bounded_and_monotone(mem, comp):
    model = ContentionModel(HWConfig())
    kind = CpuKind(mem=mem, comp=comp)
    m = model.mem_latency_multiplier(kind)
    c = model.comp_latency_multiplier(kind)
    assert 1.0 <= m <= 1.8
    assert 1.0 <= c <= 1.6
    # adding pressure never reduces a multiplier
    more = CpuKind(mem=min(1.0, mem + 0.1), comp=comp)
    assert model.mem_latency_multiplier(more) >= m


# -- counters ------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=100_000),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=1.8),
)
@settings(max_examples=60, deadline=None)
def test_counters_non_negative_and_additive(lines, dram_frac, mult):
    engine = CounterEngine(HWConfig(), 2, np.random.default_rng(0))
    engine.account_mem(0, lines, dram_frac, mult)
    snap = engine.snapshot(0)
    assert snap[STALLS_MEM_ANY] >= 0
    assert snap[INSTR_LOAD] == lines
    assert snap[INSTR_STORE] >= 0
    # accruing twice doubles the instruction counters exactly
    engine2 = CounterEngine(HWConfig(), 2, np.random.default_rng(0))
    engine2.account_mem(0, lines, dram_frac, mult)
    engine2.account_mem(0, lines, dram_frac, mult)
    assert engine2.read(0, INSTR_LOAD) == 2 * lines


# -- LRU cache ------------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 50), st.booleans()), max_size=200),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_lru_never_exceeds_capacity_and_matches_model(ops, capacity):
    """The LRU tracks a reference model implemented with a list."""
    cache = LRUCache(capacity)
    model: list[int] = []  # most-recent last
    for key, is_put in ops:
        if is_put:
            cache.put(key, key)
            if key in model:
                model.remove(key)
            model.append(key)
            if len(model) > capacity:
                model.pop(0)
        else:
            got = cache.get(key)
            if key in model:
                assert got == key
                model.remove(key)
                model.append(key)
            else:
                assert got is None
        assert len(cache) == len(model) <= capacity
    assert sorted(k for k, _ in cache.items()) == sorted(model)


# -- LSM tree ------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=300), max_size=300),
       st.integers(min_value=2, max_value=16))
@settings(max_examples=40, deadline=None)
def test_lsm_never_loses_keys(puts, memtable_entries):
    """Every inserted key stays findable through rotations, flushes and
    compactions, and L1 stays sorted and non-overlapping."""
    lsm = LSMTree(memtable_entries=memtable_entries, l0_compaction_trigger=2)
    lsm.bulk_load(50)
    inserted = set(range(50))
    for key in puts:
        imm = lsm.put(key)
        inserted.add(key)
        if imm is not None:
            lsm.flush(imm)
        if lsm.needs_compaction:
            l0, l1 = lsm.pick_compaction()
            lsm.apply_compaction(l0, l1)
    for key in inserted:
        assert lsm.get(key).location != "missing", key
    assert lsm.total_entries() == len(inserted)
    for a, b in zip(lsm.level1, lsm.level1[1:]):
        assert a.max_key < b.min_key


# -- B-tree ------------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
@settings(max_examples=40, deadline=None)
def test_btree_put_get_roundtrip(keys):
    bt = BTree(keys_per_page=8)
    for k in keys:
        bt.put(k)
    for k in keys:
        page = bt.get(k)
        assert page is not None
        assert page.page_id == k // 8


# -- YCSB distributions ---------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=100_000),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_zipfian_draws_in_range(n, seed):
    rng = np.random.default_rng(seed)
    z = ZipfianGenerator(n, rng)
    s = ScrambledZipfianGenerator(n, rng)
    for _ in range(50):
        assert 0 <= z.next() < n
        assert 0 <= s.next() < n


# -- analysis -----------------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_pearson_perfect_on_affine(xs):
    from hypothesis import assume

    # require meaningful relative spread; nearly-identical large values
    # make the correlation numerically ill-defined (pure cancellation)
    assume(np.std(xs) > 1e-6 * (abs(np.mean(xs)) + 1.0))
    ys = [2.5 * x + 3.0 for x in xs]
    assert abs(pearson(xs, ys) - 1.0) < 1e-6
    ys_neg = [-1.5 * x for x in xs]
    assert abs(pearson(xs, ys_neg) + 1.0) < 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=200),
       st.floats(min_value=0.1, max_value=1e6))
@settings(max_examples=60, deadline=None)
def test_violation_ratio_bounds(lats, slo):
    r = violation_ratio(lats, slo)
    assert 0.0 <= r <= 1.0
    assert violation_ratio(lats, 2e6) == 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=100))
@settings(max_examples=40, deadline=None)
def test_percentile_summary_ordering(lats):
    s = percentile_summary(lats)
    assert s["p50"] <= s["p70"] <= s["p80"] <= s["p90"] <= s["p99"]
    assert min(lats) - 1e-9 <= s["mean"] <= max(lats) + 1e-9
