"""Tests for the extended YCSB suite (workloads c/d/f, latest chooser)."""

import numpy as np
import pytest

from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads.kv import MemcachedService, RedisService
from repro.ycsb import (
    LatestGenerator,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_F,
    YCSBClient,
    workload_by_name,
)
from repro.ycsb.workloads import QueryGenerator, WorkloadSpec


def test_full_suite_lookup():
    for letter in "abcdef":
        spec = workload_by_name(letter)
        assert spec.name == f"workload-{letter}"


def test_workload_c_read_only():
    rng = np.random.default_rng(1)
    gen = QueryGenerator(WORKLOAD_C, 1000, rng)
    ops = {gen.next().op for _ in range(500)}
    assert ops == {"read"}


def test_workload_f_mix():
    rng = np.random.default_rng(2)
    gen = QueryGenerator(WORKLOAD_F, 1000, rng)
    ops = [gen.next().op for _ in range(4000)]
    assert set(ops) == {"read", "rmw"}
    assert ops.count("rmw") / len(ops) == pytest.approx(0.5, abs=0.03)


def test_latest_generator_prefers_new_keys():
    rng = np.random.default_rng(3)
    gen = LatestGenerator(10_000, rng)
    draws = np.array([gen.next() for _ in range(5000)])
    # the newest keys dominate
    assert np.median(draws) > 9_500
    assert draws.max() == 9_999
    gen.advance(20_000)
    draws2 = np.array([gen.next() for _ in range(5000)])
    assert np.median(draws2) > 19_500
    with pytest.raises(ValueError):
        gen.advance(5)


def test_workload_d_reads_follow_inserts():
    rng = np.random.default_rng(4)
    gen = QueryGenerator(WORKLOAD_D, 1000, rng)
    queries = [gen.next() for _ in range(4000)]
    inserts = [q for q in queries if q.op == "insert"]
    assert inserts, "workload-d must insert"
    # after inserts advance the cursor, reads chase the new keys
    late_reads = [q.key for q in queries[-500:] if q.op == "read"]
    assert np.median(late_reads) > 900


def test_invalid_key_chooser():
    with pytest.raises(ValueError):
        WorkloadSpec("bad", read=1.0, key_chooser="gaussian")


def _run_workload(service_cls, spec, rate=10_000, duration=200_000):
    system = System(config=HWConfig(sockets=1, cores_per_socket=8))
    service = service_cls(system, n_keys=5_000)
    service.start(lcpus={0, 1, 2, 3})
    client = YCSBClient(system.env, service, spec, rate,
                        np.random.default_rng(5))
    client.start(duration)
    system.run(until=duration + 20_000)
    return service


def test_redis_serves_workload_f_rmw():
    service = _run_workload(RedisService, WORKLOAD_F)
    rmw = service.recorder.latencies("rmw")
    reads = service.recorder.latencies("read")
    assert rmw.size > 100
    # an RMW is a read plus an update: visibly slower than a plain read
    assert rmw.mean() > reads.mean() * 1.3


def test_memcached_serves_workload_c_and_d():
    for spec in (WORKLOAD_C, WORKLOAD_D):
        service = _run_workload(MemcachedService, spec)
        assert service.completed > 500, spec.name
