"""Tests for the deterministic fault-injection engine (repro.faults)
and the graceful-degradation paths it exercises in the Holmes daemon.
"""

import pytest

from repro.core import Holmes, HolmesConfig
from repro.core.monitor import MetricMonitor
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.yarnlike import ContainerLaunchError, NodeManager


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def plan_of(*specs, seed=7):
    return FaultPlan(seed=seed, specs=tuple(specs))


LONG_JOB = BatchJobSpec(
    name="membeast", iterations=100_000, mem_lines=8000,
    mem_dram_frac=0.9, comp_cycles=100_000,
)


def service_like_body(thread, until_us):
    env = thread.env
    while env.now < until_us:
        yield from thread.exec(MemOp(lines=1200, dram_frac=0.15))
        yield from thread.exec(CompOp(cycles=8_000))


# -- plans: validation and serialisation -------------------------------------


def test_plan_json_roundtrip_and_coerce():
    plan = plan_of(
        FaultSpec(kind="counter_read_error", rate=0.1, end_us=5_000.0),
        FaultSpec(kind="node_fail_stop", period_us=10_000.0,
                  duration_us=2_000.0, count=2, target="server1"),
        seed=99,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.coerce(plan) is plan
    assert FaultPlan.coerce(plan.to_dict()) == plan
    assert FaultPlan.coerce(plan.to_json()) == plan
    # canonical form: byte-stable across repeated serialisation
    assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="disk_on_fire")
    with pytest.raises(ValueError):
        FaultSpec(kind="counter_read_error", rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(kind="node_fail_stop")  # driver kind needs period_us
    with pytest.raises(ValueError):
        FaultSpec(kind="tick_miss", start_us=10.0, end_us=5.0)
    with pytest.raises(TypeError):
        FaultPlan.coerce(42)


def test_spec_window_and_target():
    spec = FaultSpec(kind="tick_miss", rate=0.5, start_us=100.0, end_us=200.0)
    assert not spec.active(99.9)
    assert spec.active(100.0)
    assert spec.active(199.9)
    assert not spec.active(200.0)
    scoped = FaultSpec(kind="tick_miss", rate=0.5, target="server3")
    assert scoped.matches("server3")
    assert not scoped.matches("server0")
    assert FaultSpec(kind="tick_miss", rate=0.5).matches("anything")


# -- injector: determinism and channel separation ----------------------------


def test_injector_replays_bit_identically():
    plan = plan_of(FaultSpec(kind="counter_read_error", rate=0.3))
    a = FaultInjector(plan, scope="node0")
    b = FaultInjector(plan, scope="node0")
    seq_a = [a.counter_fault(t * 50.0) for t in range(200)]
    seq_b = [b.counter_fault(t * 50.0) for t in range(200)]
    assert seq_a == seq_b
    assert any(f == "error" for f in seq_a)


def test_injector_channels_are_independent():
    specs = (
        FaultSpec(kind="counter_read_error", rate=0.3),
        FaultSpec(kind="tick_miss", rate=0.3),
    )
    plan = plan_of(*specs)
    # consume many counter draws on one injector, none on the other: the
    # tick-fault decision stream must be unaffected.
    a = FaultInjector(plan, scope="node0")
    b = FaultInjector(plan, scope="node0")
    for t in range(500):
        a.counter_fault(t * 50.0)
    ticks_a = [a.tick_fault(t * 50.0) for t in range(200)]
    ticks_b = [b.tick_fault(t * 50.0) for t in range(200)]
    assert ticks_a == ticks_b


def test_injector_scopes_differ():
    plan = plan_of(FaultSpec(kind="counter_read_error", rate=0.5))
    a = FaultInjector(plan, scope="server0")
    b = FaultInjector(plan, scope="server1")
    seq_a = [a.counter_fault(t * 50.0) for t in range(100)]
    seq_b = [b.counter_fault(t * 50.0) for t in range(100)]
    assert seq_a != seq_b  # per-node channels, not one shared stream


def test_capability_flags():
    empty = FaultInjector(plan_of(), scope="n")
    assert not empty.has_counter_faults and not empty.has_tick_faults
    counters = FaultInjector(
        plan_of(FaultSpec(kind="counter_garbage", rate=0.1)), scope="n"
    )
    assert counters.has_counter_faults and not counters.has_tick_faults
    ticks = FaultInjector(
        plan_of(FaultSpec(kind="tick_stall", rate=0.1, duration_us=100.0)),
        scope="n",
    )
    assert ticks.has_tick_faults and not ticks.has_counter_faults


# -- monitor: stale hold, degraded mode, recovery ----------------------------


def test_counter_errors_degrade_then_recover():
    system = small_system()
    cfg = HolmesConfig()
    plan = plan_of(
        FaultSpec(kind="counter_read_error", rate=1.0, end_us=1_000.0)
    )
    monitor = MetricMonitor(system, cfg, faults=FaultInjector(plan, "node0"))
    seen = set()
    for i in range(1, 30):
        system.env.run(until=i * 50.0)
        monitor.collect()
        seen.add(monitor.health)
    # every read in [0, 1000) fails unrecoverably (retry rate == 1.0), so
    # the monitor walks healthy -> stale -> degraded, then heals once the
    # window closes.
    assert seen == {"stale", "degraded", "healthy"}
    assert monitor.health == "healthy"
    assert monitor.counter_read_failures > 0
    assert monitor.counter_retries > 0
    assert monitor.stale_windows == 0
    assert len(monitor.degraded_intervals) == 1
    start, end = monitor.degraded_intervals[0]
    # degraded after K=4 failed windows (t=200), healed at the first good
    # read past the fault window (t=1000).
    assert start == pytest.approx(cfg.stale_hold_windows * 50.0)
    assert end == pytest.approx(1_000.0)
    assert monitor.degraded_total_us(system.env.now) == pytest.approx(
        end - start
    )


def test_garbage_reads_are_discarded():
    system = small_system()
    plan = plan_of(
        FaultSpec(kind="counter_garbage", rate=1.0, magnitude=1.0e9)
    )
    monitor = MetricMonitor(
        system, HolmesConfig(), faults=FaultInjector(plan, "node0")
    )
    for i in range(1, 11):
        system.env.run(until=i * 50.0)
        monitor.collect()
    assert monitor.garbage_samples == 10
    # magnitude far above vpi_garbage_ceiling: the plausibility check
    # rejects every corrupted sample rather than feeding it to Algorithm 2.
    assert monitor.discarded_samples == 10
    assert monitor.health == "degraded"
    assert monitor.counter_read_failures == 0  # reads "succeeded"


def test_stale_hold_keeps_last_good_vpi():
    system = small_system()
    cfg = HolmesConfig(stale_hold_windows=50)  # stay in stale, not degraded
    plan = plan_of(
        FaultSpec(kind="counter_read_error", rate=1.0, start_us=100.0)
    )
    monitor = MetricMonitor(system, cfg, faults=FaultInjector(plan, "node0"))
    system.env.run(until=50.0)
    good = monitor.collect()
    assert monitor.health == "healthy"
    system.env.run(until=150.0)
    held = monitor.collect()
    assert monitor.health == "stale"
    assert (held.vpi == good.vpi).all()  # last-good hold, not zeros


# -- daemon: tick faults and the watchdog ------------------------------------


def test_tick_misses_are_counted_and_survived():
    system = small_system()
    plan = plan_of(
        FaultSpec(kind="tick_miss", rate=1.0, end_us=5_000.0)
    )
    holmes = Holmes(system, faults=FaultInjector(plan, "node0"))
    holmes.start()
    system.env.run(until=10_000.0)
    holmes.stop()
    # every boundary in [0, 5000) drops; the loop keeps ticking after.
    assert holmes.missed_ticks >= 50
    assert holmes.ticks > 0
    assert holmes.health_report()["missed_ticks"] == holmes.missed_ticks


def test_watchdog_rearms_stalled_loop():
    system = small_system()
    # one long stall right at the start: 50 ms dwarfs the auto watchdog
    # timeout (20 x 50 us), so only the watchdog can revive the loop.
    plan = plan_of(
        FaultSpec(kind="tick_stall", rate=1.0, end_us=60.0,
                  duration_us=50_000.0)
    )
    holmes = Holmes(system, faults=FaultInjector(plan, "node0"))
    holmes.start()
    system.env.run(until=10_000.0)
    holmes.stop()
    assert holmes.stalled_ticks >= 1
    assert holmes.watchdog_recoveries >= 1
    assert holmes.ticks > 50  # loop kept running after recovery


def test_health_report_shape():
    system = small_system()
    plan = plan_of(FaultSpec(kind="tick_miss", rate=0.5, end_us=1_000.0))
    holmes = Holmes(system, faults=FaultInjector(plan, "node0"))
    holmes.start()
    system.env.run(until=2_000.0)
    holmes.stop()
    report = holmes.health_report()
    assert report["health"] == "healthy"
    assert report["injected"] == {"tick_miss": holmes.missed_ticks}
    # no faults -> no "injected" key (byte-identity with plain reports)
    assert "injected" not in Holmes(small_system()).health_report()


# -- cgroup faults: retry queue and launch hardening -------------------------


def test_cpuset_write_failures_are_retried():
    system = small_system()
    # fault window opens after launch-time cgroup setup, closes at 2 ms
    plan = plan_of(
        FaultSpec(kind="cgroup_error", rate=1.0, start_us=10.0,
                  end_us=2_000.0)
    )
    holmes = Holmes(system, faults=FaultInjector(plan, "node0"))
    nm = NodeManager(system)
    nm.launch_job(LONG_JOB, tasks_per_container=2)
    sched = holmes.scheduler
    system.run(until=20.0)
    sched.tick(holmes.monitor.collect())  # placement write fails
    assert sched._pending_cpuset
    system.run(until=2_050.0)
    sched.tick(holmes.monitor.collect())  # retry past the window succeeds
    assert not sched._pending_cpuset
    assert any(e.action == "cpuset_write_failed" for e in sched.events)


def test_launch_fails_cleanly_under_cgroup_faults():
    system = small_system()
    plan = plan_of(FaultSpec(kind="cgroup_error", rate=1.0))
    injector = FaultInjector(plan, "node0")
    injector.install(system)
    nm = NodeManager(system)
    with pytest.raises(ContainerLaunchError):
        nm.launch_job(LONG_JOB, tasks_per_container=2)
    assert nm.launch_failures == 1
    assert not nm.running_jobs  # rolled back, nothing half-launched


# -- satellite: restart-safe daemon ------------------------------------------


def test_daemon_stop_start_is_restart_safe():
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    with pytest.raises(RuntimeError):
        holmes.start()  # double start is a caller bug
    system.run(until=1_000.0)
    ticks_before = holmes.ticks
    assert ticks_before > 0
    holmes.stop()
    holmes.stop()  # double stop is a no-op
    system.run(until=2_000.0)
    assert holmes.ticks == ticks_before  # stopped means stopped
    holmes.start()
    system.run(until=3_000.0)
    assert holmes.ticks > ticks_before  # restarted loop ticks again
    holmes.stop()


# -- satellite: registering an already-dead pid ------------------------------


def test_register_dead_pid_is_survivable():
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    victim = system.spawn_process("victim")
    victim.spawn_thread(
        lambda th: service_like_body(th, 100.0), affinity={0}
    )
    system.run(until=500.0)  # service body finishes; process exits
    assert not victim.alive
    assert holmes.register_lc_service(victim.pid) is False
    assert not holmes.monitor.lc_services
    assert any(
        e.action == "lc_register_failed" for e in holmes.scheduler.events
    )
    # the daemon is still alive and ticking after the failed handover
    ticks = holmes.ticks
    system.run(until=1_000.0)
    assert holmes.ticks > ticks
    with pytest.raises(KeyError):
        holmes.register_lc_service(424242)  # never-seen pid: caller bug
    holmes.stop()
