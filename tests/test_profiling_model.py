"""Property tests for the pair-compatibility model (hypothesis).

The model's usefulness to the scheduler rests on three structural
guarantees -- exact symmetry, monotonicity in contention pressure, and
bounded scores -- that hold *by construction* (symmetric features,
non-negative weights), not by luck of the fit.  These tests pin the
construction down over arbitrary profiles and weights, plus the
serialize -> load -> identical-scores round trip the ``profile`` cell
and golden files rely on.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.profiling import (
    CompatibilityModel,
    PairPredictor,
    WorkloadProfile,
    fit_model,
    nnls_fit,
    pair_features,
)
from repro.profiling.model import FEATURE_NAMES

# contention fields are excess slowdowns: non-negative, finite, and in
# practice well under 10x; generous bounds keep the properties honest.
_field = st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
                   allow_infinity=False)
_weight = st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
                    allow_infinity=False)


def _profile(name: str, sm, sc, pm, pc) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, solo_us=50.0, sens_mem=sm, sens_cpu=sc,
        pressure_mem=pm, pressure_cpu=pc,
    )


profiles = st.builds(
    _profile, st.sampled_from(["a", "b", "c"]), _field, _field, _field,
    _field,
)
models = st.builds(
    lambda ws: CompatibilityModel(weights=tuple(ws)),
    st.lists(_weight, min_size=len(FEATURE_NAMES),
             max_size=len(FEATURE_NAMES)),
)


@given(models, profiles, profiles)
@settings(max_examples=200, deadline=None)
def test_score_is_exactly_symmetric(model, a, b):
    """score(a, b) == score(b, a) bit for bit, not to within epsilon."""
    assert model.score(a, b) == model.score(b, a)
    assert model.predict_excess(a, b) == model.predict_excess(b, a)


@given(models, profiles, profiles)
@settings(max_examples=200, deadline=None)
def test_score_is_bounded(model, a, b):
    s = model.score(a, b)
    assert 0.0 <= s < 1.0
    assert model.predict_excess(a, b) >= 0.0
    assert math.isfinite(s)


@given(models, profiles, profiles,
       st.sampled_from(["pressure_mem", "pressure_cpu", "sens_mem",
                        "sens_cpu"]),
       st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_excess_is_monotone_in_probe_pressure(model, a, b, field, bump):
    """Raising any contention field of one side never lowers the
    prediction: non-negative weights times non-negative monotone
    features."""
    base = model.predict_excess(a, b)
    bumped = WorkloadProfile(
        name=a.name, solo_us=a.solo_us,
        sens_mem=a.sens_mem + (bump if field == "sens_mem" else 0.0),
        sens_cpu=a.sens_cpu + (bump if field == "sens_cpu" else 0.0),
        pressure_mem=a.pressure_mem + (
            bump if field == "pressure_mem" else 0.0
        ),
        pressure_cpu=a.pressure_cpu + (
            bump if field == "pressure_cpu" else 0.0
        ),
    )
    assert model.predict_excess(bumped, b) >= base
    assert model.score(bumped, b) >= model.score(a, b)


@given(models, st.lists(profiles, min_size=2, max_size=5, unique_by=id))
@settings(max_examples=100, deadline=None)
def test_model_round_trip_scores_identical(model, profs):
    """to_dict -> from_dict gives bit-identical scores for every pair."""
    clone = CompatibilityModel.from_dict(model.to_dict())
    assert clone.weights == model.weights
    for a in profs:
        for b in profs:
            assert clone.score(a, b) == model.score(a, b)


@given(st.lists(profiles, min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_profile_round_trip_scores_identical(profs):
    """Profile to_dict -> from_dict preserves scores bit for bit."""
    model = CompatibilityModel(
        weights=(0.1, 0.5, 0.5, 0.25, 0.25)
    )
    clones = [WorkloadProfile.from_dict(p.to_dict()) for p in profs]
    for p, c in zip(profs, clones):
        assert c == p
        assert model.score(p, c) == model.score(p, p)


def _sse(rows, targets, w):
    return sum(
        (sum(wi * xi for wi, xi in zip(w, row)) - y) ** 2
        for row, y in zip(rows, targets)
    )


@given(st.lists(_weight, min_size=len(FEATURE_NAMES),
                max_size=len(FEATURE_NAMES)),
       st.lists(profiles, min_size=3, max_size=6))
@settings(max_examples=40, deadline=None)
def test_nnls_weights_nonnegative_and_never_worse_than_zero(true_w, profs):
    """Whatever hypothesis throws at it (including near-collinear
    feature columns where convergence is slow), the fit stays feasible
    -- non-negative weights -- and coordinate descent from zero-init
    never ends with a worse objective than the zero vector it started
    from."""
    rows, targets = [], []
    for i, a in enumerate(profs):
        for b in profs[i:]:
            f = pair_features(a, b)
            rows.append(list(f))
            targets.append(sum(w * x for w, x in zip(true_w, f)))
    w = nnls_fit(rows, targets)
    assert all(x >= 0.0 for x in w)
    scale = max(1.0, max(abs(t) for t in targets)) ** 2
    assert _sse(rows, targets, w) <= _sse(
        rows, targets, [0.0] * len(w)
    ) + 1e-9 * scale


def test_nnls_recovers_planted_weights():
    """Given enough sweeps, planted non-negative weights are recovered
    exactly on a diverse profile set (the cross/product features are
    correlated by construction, so the default 200 sweeps land near the
    optimum -- RMSE a few 1e-3 -- and full convergence takes more)."""
    profs = [
        _profile("a", 2.0, 0.1, 1.5, 0.2),
        _profile("b", 0.2, 1.1, 0.1, 0.9),
        _profile("c", 0.9, 0.5, 0.6, 0.5),
        _profile("d", 0.1, 0.1, 0.05, 0.05),
    ]
    true_w = (0.05, 0.4, 0.7, 0.2, 0.3)
    rows, targets = [], []
    for i, a in enumerate(profs):
        for b in profs[i:]:
            f = pair_features(a, b)
            rows.append(list(f))
            targets.append(sum(w * x for w, x in zip(true_w, f)))
    w = nnls_fit(rows, targets, sweeps=100_000)
    assert all(x >= 0.0 for x in w)
    for wi, ti in zip(w, true_w):
        assert abs(wi - ti) <= 1e-6
    # the shipped default lands close enough for scheduling purposes.
    w200 = nnls_fit(rows, targets)
    scale = max(abs(t) for t in targets)
    for row, y in zip(rows, targets):
        pred = sum(wi * xi for wi, xi in zip(w200, row))
        assert abs(pred - y) <= 0.01 * scale


def test_fit_model_end_to_end_round_trip():
    """fit -> serialize -> load -> identical scores over the fit pairs."""
    profs = {
        "mem": _profile("mem", 2.0, 0.1, 1.5, 0.1),
        "cpu": _profile("cpu", 0.1, 1.0, 0.1, 0.9),
        "mix": _profile("mix", 0.8, 0.5, 0.7, 0.5),
    }
    pairs = [
        (a, b, 0.3 * (profs[a].pressure_mem * profs[b].sens_mem
                      + profs[b].pressure_mem * profs[a].sens_mem))
        for i, a in enumerate(sorted(profs))
        for b in sorted(profs)[i:]
    ]
    model = fit_model(profs, pairs)
    clone = CompatibilityModel.from_dict(model.to_dict())
    for a, b, _ in pairs:
        assert clone.score(profs[a], profs[b]) == model.score(
            profs[a], profs[b]
        )


def test_predictor_node_cost_monotone_in_residents_and_lc():
    """More residents and more LC activity never cheapen a placement."""
    profs = {
        "kmeans": _profile("kmeans", 1.0, 0.3, 0.8, 0.3),
        "terasort": _profile("terasort", 1.5, 0.2, 1.2, 0.2),
        "lc": _profile("lc", 2.0, 0.1, 1.0, 0.0),
    }
    model = CompatibilityModel(weights=(0.0, 0.6, 0.4, 0.3, 0.2))
    pred = PairPredictor(model, profs, lc_weight=2.0)
    empty = pred.node_cost("kmeans-3", [])
    one = pred.node_cost("kmeans-3", ["terasort-1"])
    two = pred.node_cost("kmeans-3", ["terasort-1", "kmeans-9"])
    assert empty == 0.0
    assert one >= empty
    assert two >= one
    quiet = pred.node_cost("kmeans-3", ["terasort-1"], lc_activity=0.0)
    busy = pred.node_cost("kmeans-3", ["terasort-1"], lc_activity=1.0)
    assert busy > quiet
    # family resolution + symmetry at the predictor layer
    assert pred.score("kmeans-3", "terasort-7") == pred.score(
        "terasort-1", "kmeans-0"
    )
