"""Unit/integration tests for the OS layer: threads, affinity, scheduling."""

import pytest

from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System, ThreadState


@pytest.fixture
def system():
    return System(config=HWConfig())


def test_single_thread_runs_memop_to_completion(system):
    done = []

    def body(thread):
        yield from thread.exec(MemOp(lines=16384, dram_frac=1.0))
        done.append(thread.env.now)

    proc = system.spawn_process("probe")
    proc.spawn_thread(body, affinity={0})
    system.run()
    assert len(done) == 1
    # ~1,400us uncontended (Fig. 2 calibration), through the full OS path
    assert done[0] == pytest.approx(1400, rel=0.02)


def test_two_threads_share_one_lcpu_round_robin(system):
    """Two CPU-bound threads on one logical CPU each take ~2x as long."""
    finish = {}

    def body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))  # 1000us alone
        finish[thread.name] = thread.env.now

    proc = system.spawn_process("contenders")
    proc.spawn_thread(body, affinity={0}, name="a")
    proc.spawn_thread(body, affinity={0}, name="b")
    system.run()
    assert finish["a"] == pytest.approx(2000, rel=0.06)
    assert finish["b"] == pytest.approx(2000, rel=0.06)


def test_threads_spread_across_allowed_lcpus(system):
    """Least-loaded placement spreads threads over the affinity set."""
    finish = {}

    def body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))
        finish[thread.name] = (thread.env.now, thread.last_lcpu)

    proc = system.spawn_process("spread")
    proc.spawn_thread(body, affinity={0, 1}, name="a")
    proc.spawn_thread(body, affinity={0, 1}, name="b")
    system.run()
    lcpus = {v[1] for v in finish.values()}
    assert lcpus == {0, 1}
    for t, (end, _) in finish.items():
        assert end == pytest.approx(1000, rel=0.05)


def test_smt_interference_through_os_path(system):
    """Memory threads on sibling lcpus slow each other (Fig. 2 case 3)."""
    finish = {}
    sib = system.server.topology.sibling(0)

    def body(thread):
        yield from thread.exec(MemOp(lines=16384, dram_frac=1.0))
        finish[thread.name] = thread.env.now

    proc = system.spawn_process("siblings")
    proc.spawn_thread(body, affinity={0}, name="a")
    proc.spawn_thread(body, affinity={sib}, name="b")
    system.run()
    for name in ("a", "b"):
        assert finish[name] > 2100  # ~2,300us contended vs 1,400 alone


def test_separate_cores_no_interference(system):
    finish = {}

    def body(thread):
        yield from thread.exec(MemOp(lines=16384, dram_frac=1.0))
        finish[thread.name] = thread.env.now

    proc = system.spawn_process("cores")
    proc.spawn_thread(body, affinity={0}, name="a")
    proc.spawn_thread(body, affinity={1}, name="b")
    system.run()
    for name in ("a", "b"):
        assert finish[name] == pytest.approx(1400, rel=0.02)


def test_sched_setaffinity_migrates_waiting_thread(system):
    """A thread queued on a now-forbidden CPU requeues immediately."""
    finish = {}

    def hog(thread):
        yield from thread.exec(CompOp(cycles=24_000_000))  # 10,000us

    def victim(thread):
        yield from thread.exec(CompOp(cycles=240_000))  # 100us alone
        finish["victim"] = (thread.env.now, thread.last_lcpu)

    proc = system.spawn_process("p")
    proc.spawn_thread(hog, affinity={0}, name="hog")
    vt = proc.spawn_thread(victim, affinity={0}, name="victim")

    def controller(env):
        # mid-quantum of the hog: the victim is queued (WAITING_CPU) on
        # lcpu 0; moving its mask must requeue it onto lcpu 1 right away
        yield env.timeout(25.0)
        system.sched_setaffinity(vt.tid, {1})

    system.env.process(controller(system.env))
    system.run()
    end, lcpu = finish["victim"]
    assert lcpu == 1
    assert end < 300


def test_sched_setaffinity_running_thread_moves_at_quantum_edge(system):
    trace = []

    def body(thread):
        for _ in range(20):
            yield from thread.exec(CompOp(cycles=120_000))  # 50us quanta
            trace.append((thread.env.now, thread.last_lcpu))

    proc = system.spawn_process("p")
    t = proc.spawn_thread(body, affinity={0}, name="mover")

    def controller(env):
        yield env.timeout(320.0)
        system.sched_setaffinity(t.tid, {5})

    system.env.process(controller(system.env))
    system.run()
    before = [l for (ts, l) in trace if ts <= 320]
    after = [l for (ts, l) in trace if ts > 420]
    assert set(before) == {0}
    assert set(after) == {5}


def test_sched_setaffinity_validation(system):
    proc = system.spawn_process("p")

    def body(thread):
        yield from thread.sleep(10.0)

    t = proc.spawn_thread(body, affinity={0})
    with pytest.raises(ValueError):
        system.sched_setaffinity(t.tid, set())
    with pytest.raises(ValueError):
        system.sched_setaffinity(t.tid, {9999})
    with pytest.raises(KeyError):
        system.sched_setaffinity(424242, {0})
    system.run()


def test_kill_sleeping_thread(system):
    log = []

    def body(thread):
        log.append("start")
        yield from thread.sleep(1_000_000.0)
        log.append("never")

    proc = system.spawn_process("p")
    t = proc.spawn_thread(body, affinity={0})

    def killer(env):
        yield env.timeout(50.0)
        t.kill()

    system.env.process(killer(system.env))
    system.run()
    assert log == ["start"]
    assert t.state == ThreadState.KILLED
    assert not t.alive


def test_kill_cpu_bound_thread(system):
    def body(thread):
        yield from thread.exec(CompOp(cycles=24_000_000_000))  # ~10s

    proc = system.spawn_process("p")
    t = proc.spawn_thread(body, affinity={0})

    def killer(env):
        yield env.timeout(500.0)
        t.kill()

    system.env.process(killer(system.env))
    system.run()
    assert t.state == ThreadState.KILLED
    # killed within a couple of quanta of the request
    assert system.env.now < 700


def test_process_exit_detection(system):
    def body(thread):
        yield from thread.exec(CompOp(cycles=240_000))

    proc = system.spawn_process("p")
    proc.spawn_thread(body, affinity={0})
    proc.spawn_thread(body, affinity={1})
    assert proc.alive
    system.run()
    assert not proc.alive
    assert proc.exited_at == pytest.approx(100, rel=0.05)


def test_thread_cputime_accounting(system):
    def body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))  # 1000us
        yield from thread.sleep(500.0)
        yield from thread.exec(CompOp(cycles=2_400_000))

    proc = system.spawn_process("p")
    t = proc.spawn_thread(body, affinity={3})
    system.run()
    assert t.cputime_us == pytest.approx(2000, rel=0.02)
    assert proc.cputime_us == t.cputime_us


def test_empty_affinity_rejected(system):
    proc = system.spawn_process("p")
    with pytest.raises(ValueError):
        proc.spawn_thread(lambda th: iter(()), affinity=set())


def test_disk_io_releases_cpu(system):
    """A thread blocked on disk lets another thread use its CPU."""
    finish = {}

    def io_body(thread):
        for _ in range(10):
            yield from thread.disk_io(4096)
        finish["io"] = thread.env.now

    def cpu_body(thread):
        yield from thread.exec(CompOp(cycles=2_400_000))  # 1000us alone
        finish["cpu"] = thread.env.now

    proc = system.spawn_process("p")
    proc.spawn_thread(io_body, affinity={0}, name="io")
    proc.spawn_thread(cpu_body, affinity={0}, name="cpu")
    system.run()
    # the CPU-bound thread is barely slowed by the IO thread
    assert finish["cpu"] < 1300


def test_wait_primitive_with_store(system):
    from repro.sim import Store

    store = Store(system.env)
    got = []

    def consumer(thread):
        item = yield from thread.wait(store.get())
        got.append((thread.env.now, item))

    def producer(env):
        yield env.timeout(77.0)
        store.put_nowait("ping")

    proc = system.spawn_process("p")
    proc.spawn_thread(consumer, affinity={0})
    system.env.process(producer(system.env))
    system.run()
    assert got == [(77.0, "ping")]


def test_deterministic_scheduling():
    def run_once():
        system = System(config=HWConfig(seed=3))
        finish = {}

        def body(thread):
            for _ in range(5):
                yield from thread.exec(MemOp(lines=500, dram_frac=0.5))
                yield from thread.sleep(13.0)
            finish[thread.name] = thread.env.now

        proc = system.spawn_process("p")
        for i in range(8):
            proc.spawn_thread(body, affinity={0, 1, 2, 32}, name=f"t{i}")
        system.run()
        return finish

    assert run_once() == run_once()
