"""Tests for the multi-server cluster extension (repro.cluster)."""

import pytest

from repro.cluster import Cluster, ClusterBatchScheduler
from repro.core import Holmes, HolmesConfig
from repro.hw import CompOp, HWConfig, MemOp
from repro.workloads.batch import BatchJobSpec

TINY = BatchJobSpec(name="tiny", iterations=20, mem_lines=1000,
                    mem_dram_frac=0.8, comp_cycles=500_000)


def test_cluster_shares_one_clock():
    cluster = Cluster(n_servers=3)
    envs = {node.system.env for node in cluster.nodes}
    assert len(envs) == 1
    assert len(cluster.nodes) == 3
    assert cluster.nodes[0].name == "server0"


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(n_servers=0)


def test_scheduler_places_on_least_loaded():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    j1 = sched.submit(TINY)
    j2 = sched.submit(TINY)
    # second job lands on the other server
    assert j1.node is not j2.node


def test_jobs_complete_across_servers():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    jobs = [sched.submit(TINY) for _ in range(4)]
    cluster.run(until=2_000_000)
    assert all(j.instance.finished for j in jobs)
    assert len(sched.finished_jobs()) == 4


def test_starved_job_relocates():
    """The paper's limitation scenario: sustained LC traffic starves batch
    on one server; the cluster scheduler moves the job elsewhere."""
    cluster = Cluster(n_servers=2)
    hot = cluster.nodes[0]

    # saturate server0 with an aggressive "LC" workload on every CPU so
    # batch there makes no progress
    def hog_body(thread):
        while thread.env.now < 3_000_000:
            yield from thread.exec(MemOp(lines=5000, dram_frac=0.5))
            yield from thread.exec(CompOp(cycles=1_000_000))

    lc = hot.system.spawn_process("lc-flood")
    n = hot.system.server.topology.n_lcpus
    for i in range(n):
        lc.spawn_thread(hog_body, affinity={i}, name=f"hog{i}")

    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=20_000.0,
        stall_patience_us=60_000.0,
        # fair-share with one hog per CPU gives each task ~50% of a CPU;
        # demand at least 75% to count as healthy
        min_progress_fraction=0.75,
        tasks_per_container=2,
    )
    # big enough that it cannot finish before the stall detector trips
    slow = BatchJobSpec(name="slow", iterations=2000, mem_lines=1000,
                        mem_dram_frac=0.8, comp_cycles=500_000)
    job = sched.submit(slow, node=hot)  # force onto the saturated server
    sched.start()
    cluster.run(until=3_000_000)
    assert job.relocations >= 1
    assert job.node is cluster.nodes[1]
    assert job.instance.finished


def test_healthy_job_not_relocated():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, check_interval_us=20_000.0,
                                  stall_patience_us=60_000.0,
                                  tasks_per_container=2)
    job = sched.submit(TINY)
    sched.start()
    cluster.run(until=2_000_000)
    assert job.relocations == 0
    assert job.instance.finished


def test_scheduler_double_start():
    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster)
    sched.start()
    with pytest.raises(RuntimeError):
        sched.start()


def test_holmes_per_server():
    """Each server can run its own Holmes daemon on the shared clock."""
    cluster = Cluster(n_servers=2)
    daemons = []
    for node in cluster.nodes:
        h = Holmes(node.system, HolmesConfig(n_reserved=2))
        h.start()
        daemons.append(h)
    cluster.run(until=10_000)
    for h in daemons:
        assert h.ticks == pytest.approx(200, abs=2)
