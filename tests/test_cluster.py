"""Tests for the multi-server cluster extension (repro.cluster)."""

import pytest

from repro.cluster import Cluster, ClusterBatchScheduler
from repro.core import Holmes, HolmesConfig
from repro.hw import CompOp, MemOp
from repro.workloads.batch import BatchJobSpec

TINY = BatchJobSpec(name="tiny", iterations=20, mem_lines=1000,
                    mem_dram_frac=0.8, comp_cycles=500_000)


def test_cluster_shares_one_clock():
    cluster = Cluster(n_servers=3)
    envs = {node.system.env for node in cluster.nodes}
    assert len(envs) == 1
    assert len(cluster.nodes) == 3
    assert cluster.nodes[0].name == "server0"


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(n_servers=0)


def test_scheduler_places_on_least_loaded():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    j1 = sched.submit(TINY)
    j2 = sched.submit(TINY)
    # second job lands on the other server
    assert j1.node is not j2.node


def test_jobs_complete_across_servers():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    jobs = [sched.submit(TINY) for _ in range(4)]
    cluster.run(until=2_000_000)
    assert all(j.instance.finished for j in jobs)
    assert len(sched.finished_jobs()) == 4


def test_starved_job_relocates():
    """The paper's limitation scenario: sustained LC traffic starves batch
    on one server; the cluster scheduler moves the job elsewhere."""
    cluster = Cluster(n_servers=2)
    hot = cluster.nodes[0]

    # saturate server0 with an aggressive "LC" workload on every CPU so
    # batch there makes no progress
    def hog_body(thread):
        while thread.env.now < 3_000_000:
            yield from thread.exec(MemOp(lines=5000, dram_frac=0.5))
            yield from thread.exec(CompOp(cycles=1_000_000))

    lc = hot.system.spawn_process("lc-flood")
    n = hot.system.server.topology.n_lcpus
    for i in range(n):
        lc.spawn_thread(hog_body, affinity={i}, name=f"hog{i}")

    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=20_000.0,
        stall_patience_us=60_000.0,
        # fair-share with one hog per CPU gives each task ~50% of a CPU;
        # demand at least 75% to count as healthy
        min_progress_fraction=0.75,
        tasks_per_container=2,
    )
    # big enough that it cannot finish before the stall detector trips
    slow = BatchJobSpec(name="slow", iterations=2000, mem_lines=1000,
                        mem_dram_frac=0.8, comp_cycles=500_000)
    job = sched.submit(slow, node=hot)  # force onto the saturated server
    sched.start()
    cluster.run(until=3_000_000)
    assert job.relocations >= 1
    assert job.node is cluster.nodes[1]
    assert job.instance.finished


def test_healthy_job_not_relocated():
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, check_interval_us=20_000.0,
                                  stall_patience_us=60_000.0,
                                  tasks_per_container=2)
    job = sched.submit(TINY)
    sched.start()
    cluster.run(until=2_000_000)
    assert job.relocations == 0
    assert job.instance.finished


def test_scheduler_double_start():
    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster)
    sched.start()
    with pytest.raises(RuntimeError):
        sched.start()


def test_holmes_per_server():
    """Each server can run its own Holmes daemon on the shared clock."""
    cluster = Cluster(n_servers=2)
    daemons = []
    for node in cluster.nodes:
        h = Holmes(node.system, HolmesConfig(n_reserved=2))
        h.start()
        daemons.append(h)
    cluster.run(until=10_000)
    for h in daemons:
        assert h.ticks == pytest.approx(200, abs=2)


def test_stop_cancels_supervision_immediately():
    """stop() must cancel the loop now, not at the next periodic wake."""
    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster, check_interval_us=1_000_000.0)
    sched.start()
    cluster.run(until=10_000)
    assert sched._proc.is_alive
    sched.stop()
    # well before the next 1 s wake: the interrupt retires the process at
    # the current instant, so one tiny step is enough to observe it dead.
    cluster.run(until=10_001)
    assert not sched._proc.is_alive


def test_stop_in_same_instant_as_start():
    """stop() before the loop's first resume must not raise."""
    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster)
    sched.start()
    sched.stop()  # process not yet started by the event loop
    cluster.run(until=200_000)
    assert not sched._proc.is_alive


def test_stop_idempotent_and_after_finish():
    cluster = Cluster(n_servers=1)
    sched = ClusterBatchScheduler(cluster, check_interval_us=10_000.0)
    sched.start()
    cluster.run(until=50_000)
    sched.stop()
    sched.stop()  # second stop is a no-op
    cluster.run(until=60_000)
    sched.stop()  # and stopping a dead loop stays safe
    assert not sched._proc.is_alive


def test_single_node_cluster_never_relocates():
    """With nowhere to go, a starved job stays put (no kill/restart churn)."""
    cluster = Cluster(n_servers=1)
    node = cluster.nodes[0]

    def hog_body(thread):
        while thread.env.now < 1_500_000:
            yield from thread.exec(MemOp(lines=5000, dram_frac=0.5))
            yield from thread.exec(CompOp(cycles=1_000_000))

    lc = node.system.spawn_process("lc-flood")
    for i in range(node.system.server.topology.n_lcpus):
        lc.spawn_thread(hog_body, affinity={i}, name=f"hog{i}")

    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=20_000.0,
        stall_patience_us=60_000.0,
        min_progress_fraction=0.75,
        tasks_per_container=2,
    )
    slow = BatchJobSpec(name="slow", iterations=2000, mem_lines=1000,
                        mem_dram_frac=0.8, comp_cycles=500_000)
    job = sched.submit(slow)
    sched.start()
    cluster.run(until=1_000_000)
    assert job.relocations == 0
    assert sched.relocations == 0
    assert job.node is node
    assert job.instance is not None  # still the original attempt


def test_relocate_skips_job_finished_mid_flight():
    """A job that completes between detection and action is left alone."""
    cluster = Cluster(n_servers=2)
    sched = ClusterBatchScheduler(cluster, tasks_per_container=2)
    job = sched.submit(TINY)
    cluster.run(until=2_000_000)
    assert job.instance.finished
    instance = job.instance
    job.stalled_since = 0.0  # simulate a stale stall verdict
    sched._relocate(job, kind="stall")
    assert job.instance is instance  # not killed, not restarted
    assert job.relocations == 0
    assert sched.relocations == 0
    assert job.stalled_since is None  # verdict cleared


def test_relocation_counters_stay_consistent_under_churn():
    """Per-job and scheduler-wide relocation counts must agree."""
    import numpy as np

    from repro.cluster.churn import ChurnConfig, JobArrivalProcess

    cluster = Cluster(n_servers=2)
    hot = cluster.nodes[0]

    def hog_body(thread):
        while thread.env.now < 1_500_000:
            yield from thread.exec(MemOp(lines=5000, dram_frac=0.5))
            yield from thread.exec(CompOp(cycles=1_000_000))

    lc = hot.system.spawn_process("lc-flood")
    for i in range(hot.system.server.topology.n_lcpus):
        lc.spawn_thread(hog_body, affinity={i}, name=f"hog{i}")

    sched = ClusterBatchScheduler(
        cluster,
        check_interval_us=20_000.0,
        stall_patience_us=40_000.0,
        # fair-share against one hog per CPU leaves each task ~50-65% of a
        # CPU; demand 75% so the flooded node's jobs register as starved
        min_progress_fraction=0.75,
        tasks_per_container=2,
    )
    churn = ChurnConfig(n_jobs=12)
    # jobs big enough (~80 ms/task alone) to outlive the stall patience
    big = BatchJobSpec(name="churnbig", iterations=300, mem_lines=1000,
                       mem_dram_frac=0.8, comp_cycles=500_000)
    arrivals = JobArrivalProcess(sched, churn, 600_000.0,
                                 np.random.default_rng(3), base_spec=big)
    sched.start()
    arrivals.start()
    cluster.run(until=1_500_000)
    sched.stop()

    assert len(sched.jobs) == 12
    per_job = sum(j.relocations for j in sched.jobs)
    assert per_job == sched.relocations
    assert sched.relocations == sched.stall_relocations + sched.preemptive_relocations
    # half the cluster was flooded, so some batch job must have moved
    assert sched.relocations >= 1
