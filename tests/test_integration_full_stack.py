"""Full-stack integration: every layer exercised together in one scenario.

One simulated second of a production-shaped day: two services (an
in-memory and a disk-backed store) sharing one Holmes-managed server with
a continuous DAG-job stream, bursty traffic, a tracer attached, and
results exported -- verifying the layers compose without special-casing.
"""

import numpy as np
import pytest

from repro.core import Holmes, HolmesConfig
from repro.hw import HWConfig
from repro.oskernel import System
from repro.tracing import ExecutionTracer, occupancy
from repro.workloads.dag import SPARK_KMEANS_DAG, StagedJobRunner
from repro.workloads.kv import RedisService, RocksDBService
from repro.ycsb import BurstyTraffic, YCSBClient, workload_by_name
from repro.yarnlike import ContinuousSubmitter, NodeManager


@pytest.fixture(scope="module")
def scenario():
    system = System(config=HWConfig(sockets=1, cores_per_socket=8, seed=5))
    tracer = ExecutionTracer(system, max_records=3_000_000)
    tracer.attach()

    holmes = Holmes(system, HolmesConfig(n_reserved=4))
    holmes.start()

    redis = RedisService(system, n_keys=20_000, name="redis")
    redis.start(lcpus={0, 1})
    holmes.register_lc_service(redis.pid)

    rocksdb = RocksDBService(system, n_keys=20_000, name="rocksdb")
    rocksdb.start(lcpus={2, 3}, n_workers=2)
    holmes.register_lc_service(rocksdb.pid)

    nm = NodeManager(system, default_cpuset=holmes.non_reserved_cpus())
    sub = ContinuousSubmitter(nm, target_concurrent=2, tasks_per_container=4)
    sub.start()

    # plus one DAG job running on the batch CPUs
    dag = StagedJobRunner(SPARK_KMEANS_DAG, system.env,
                          np.random.default_rng(9))
    dag_proc = system.spawn_process("dag", cgroup_path="/yarn/dagjob")
    system.cgroups.get("/yarn/dagjob").set_cpuset(holmes.non_reserved_cpus())
    for i in range(4):
        dag_proc.spawn_thread(dag.worker_body, name=f"dag{i}",
                              quantum_us=100.0)

    traffic_rng = np.random.default_rng(6)
    for service, wl, rate, seed in ((redis, "a", 15_000, 7),
                                    (rocksdb, "b", 20_000, 8)):
        YCSBClient(
            system.env, service, workload_by_name(wl), rate,
            np.random.default_rng(seed),
            traffic=BurstyTraffic(traffic_rng, scale=100.0),
        ).start(1_000_000)

    system.run(until=1_000_000)
    tracer.detach()
    return dict(system=system, holmes=holmes, redis=redis, rocksdb=rocksdb,
                nm=nm, dag=dag, tracer=tracer)


def test_both_services_served(scenario):
    assert scenario["redis"].completed > 3_000
    assert scenario["rocksdb"].completed > 4_000
    # healthy latency for both despite the zoo around them
    assert scenario["redis"].recorder.p99() < 600
    assert scenario["rocksdb"].recorder.p99() < 2_000


def test_dag_job_finished(scenario):
    assert scenario["dag"].done.triggered
    assert scenario["dag"].finished_stages[-1] == "update"


def test_batch_stream_progressed(scenario):
    assert scenario["nm"].jobs  # submitted
    total_cpu = sum(
        c.process.cputime_us
        for j in scenario["nm"].jobs for c in j.containers
    )
    assert total_cpu > 1_000_000  # batch actually consumed CPU time


def test_holmes_stayed_in_control(scenario):
    holmes = scenario["holmes"]
    assert holmes.ticks == pytest.approx(20_000, abs=10)
    actions = {e.action for e in holmes.scheduler.events}
    assert "container_launch" in actions
    # interference was detected and dealt with at least once
    assert "dealloc_sibling" in actions
    ov = holmes.estimated_overhead()
    assert 0.01 < ov["cpu_fraction"] < 0.035


def test_trace_consistent_with_accounting(scenario):
    tracer = scenario["tracer"]
    system = scenario["system"]
    occ = occupancy(tracer, 0.0, 1_000_000.0)
    busy = system.server.busy_snapshot() / 1_000_000.0
    for lcpu, frac in occ.items():
        assert frac == pytest.approx(min(busy[lcpu], 1.0), abs=0.02)


def test_reserved_cpus_never_ran_batch(scenario):
    tracer = scenario["tracer"]
    nm = scenario["nm"]
    batch_tids = {
        t.tid
        for j in nm.jobs for c in j.containers for t in c.process.threads
    }
    for lcpu in scenario["holmes"].reserved_cpus:
        for rec in tracer.records(lcpu=lcpu):
            assert rec.tid not in batch_tids
