"""Property-based fuzz of the Holmes scheduler's core invariants.

Whatever sequence of batch launches, kills, and traffic phases occurs,
these must always hold at every point in time:

* batch containers never get a reserved CPU;
* no container's cpuset is ever empty;
* sibling grants are always siblings of current LC CPUs;
* the LC CPU set always contains the reserved set.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Holmes, HolmesConfig
from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.yarnlike import NodeManager

JOB = BatchJobSpec(name="fuzzjob", iterations=100_000, mem_lines=5000,
                   mem_dram_frac=0.85, comp_cycles=2_000_000)


def service_body(thread, phases):
    """Alternate serving/idle phases as dictated by the fuzz schedule."""
    for serve_us, idle_us in phases:
        end = thread.env.now + serve_us
        while thread.env.now < end:
            yield from thread.exec(MemOp(lines=1200, dram_frac=0.15))
            yield from thread.exec(CompOp(cycles=8_000))
        if idle_us > 0:
            yield from thread.sleep(idle_us)


# each action: (delay_us, kind) where kind 0 = launch job, 1 = kill newest
action_strategy = st.lists(
    st.tuples(st.floats(min_value=100.0, max_value=5_000.0),
              st.integers(min_value=0, max_value=1)),
    min_size=1, max_size=8,
)

phase_strategy = st.lists(
    st.tuples(st.floats(min_value=1_000.0, max_value=10_000.0),
              st.floats(min_value=0.0, max_value=5_000.0)),
    min_size=1, max_size=4,
)


@given(actions=action_strategy, phases=phase_strategy,
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_scheduler_invariants_hold_under_fuzz(actions, phases, seed):
    system = System(config=HWConfig(sockets=1, cores_per_socket=8,
                                    seed=seed))
    holmes = Holmes(system, HolmesConfig(n_reserved=4, s_hold_us=3_000.0))
    holmes.start()

    svc = system.spawn_process("svc")
    svc.spawn_thread(lambda th: service_body(th, phases), affinity={0})
    holmes.register_lc_service(svc.pid)

    nm = NodeManager(system, default_cpuset=holmes.non_reserved_cpus(),
                     seed=seed + 1)

    def driver(env):
        for delay, kind in actions:
            yield env.timeout(delay)
            if kind == 0 or not nm.running_jobs:
                nm.launch_job(JOB, tasks_per_container=2)
            else:
                nm.kill_job(nm.running_jobs[-1])

    system.env.process(driver(system.env))

    violations = []

    def checker(env):
        reserved = set(holmes.reserved_cpus)
        while env.now < 60_000:
            yield env.timeout(500.0)
            if not set(reserved) <= set(holmes.lc_cpus):
                violations.append((env.now, "reserved not in lc_cpus"))
            lc_sibs = holmes.scheduler.lc_sibling_cpus
            for info in holmes.monitor.containers.values():
                cpuset = info.cgroup.effective_cpuset()
                if cpuset is None or not cpuset:
                    violations.append((env.now, f"{info.name}: empty cpuset"))
                    continue
                if cpuset & reserved:
                    violations.append(
                        (env.now, f"{info.name}: on reserved {cpuset & reserved}")
                    )
                bad_grants = info.sibling_grants - lc_sibs
                if bad_grants:
                    violations.append(
                        (env.now, f"{info.name}: stale grants {bad_grants}")
                    )

    system.env.process(checker(system.env))
    system.run(until=60_000)
    assert not violations, violations[:5]
