"""Tests for process memory accounting (the paper's Sec. 6.3 metric)."""


from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.workloads.kv import RedisService, RocksDBService
from repro.yarnlike import NodeManager
from repro.yarnlike.nodemanager import CONTAINER_MEMORY_BYTES


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def test_empty_system_uses_no_memory():
    system = small_system()
    assert system.memory_used_bytes() == 0
    assert system.memory_utilization() == 0.0


def test_service_memory_scales_with_data():
    system = small_system()
    small = RedisService(system, n_keys=1_000, name="s")
    big = RedisService(system, n_keys=100_000, name="b")
    assert big.resident_bytes() > 50 * small.resident_bytes()


def test_started_service_counts_toward_utilization():
    system = small_system()
    service = RocksDBService(system, n_keys=10_000)
    service.start(lcpus={0})
    assert system.memory_used_bytes() == service.resident_bytes()
    assert 0.0 < system.memory_utilization() < 1.0


def test_container_fixed_allotment_and_release_on_exit():
    system = small_system()
    nm = NodeManager(system)
    tiny = BatchJobSpec(name="t", iterations=3, mem_lines=100,
                        mem_dram_frac=0.5, comp_cycles=100_000)
    job = nm.launch_job(tiny, n_containers=2, tasks_per_container=1)
    assert system.memory_used_bytes() == 2 * CONTAINER_MEMORY_BYTES
    system.run()
    assert job.finished
    # exited containers no longer count ("fixed size ... unless changed")
    assert system.memory_used_bytes() == 0


def test_memory_utilization_stable_under_colocation():
    """The paper's Sec. 6.3 observation: utilisation is flat over a run
    (services hold steady-state data; containers hold fixed allotments)."""
    system = small_system()
    service = RedisService(system, n_keys=20_000)
    service.start(lcpus={0, 1})
    nm = NodeManager(system)
    hog = BatchJobSpec(name="h", iterations=1_000, mem_lines=2000,
                       mem_dram_frac=0.8, comp_cycles=1_000_000)
    nm.launch_job(hog, n_containers=2, tasks_per_container=2)
    samples = []

    def sampler(env):
        while env.now < 100_000:
            yield env.timeout(10_000.0)
            samples.append(system.memory_utilization())

    system.env.process(sampler(system.env))
    system.run(until=100_000)
    assert samples
    assert max(samples) == min(samples)  # perfectly flat mid-run
