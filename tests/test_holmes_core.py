"""Unit and integration tests for the Holmes daemon (repro.core)."""

import pytest

from repro.core import Holmes, HolmesConfig
from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.yarnlike import NodeManager


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


HEAVY_MEM_JOB = BatchJobSpec(
    name="membeast", iterations=100_000, mem_lines=8000,
    mem_dram_frac=0.9, comp_cycles=100_000,
)


def service_like_body(thread, until_us):
    """A service-ish loop: mostly-cached memory ops with some compute."""
    env = thread.env
    while env.now < until_us:
        yield from thread.exec(MemOp(lines=1200, dram_frac=0.15))
        yield from thread.exec(CompOp(cycles=8_000))


# -- configuration -----------------------------------------------------------


def test_config_defaults_match_paper():
    cfg = HolmesConfig()
    assert cfg.interval_us == 50.0
    assert cfg.n_reserved == 4
    assert cfg.e_threshold == 40.0
    assert cfg.t_expand == 0.8


def test_config_validation():
    with pytest.raises(ValueError):
        HolmesConfig(interval_us=0)
    with pytest.raises(ValueError):
        HolmesConfig(t_expand=1.5)
    with pytest.raises(ValueError):
        HolmesConfig(e_threshold=-1)
    with pytest.raises(ValueError):
        HolmesConfig(serving_on_usage=0.01, serving_off_usage=0.05)


def test_reserved_resolution():
    cfg = HolmesConfig(n_reserved=4)
    assert cfg.resolve_reserved(8) == [0, 1, 2, 3]
    cfg2 = HolmesConfig(reserved_cpus=[2, 5])
    assert cfg2.resolve_reserved(8) == [2, 5]
    with pytest.raises(ValueError):
        HolmesConfig(n_reserved=20).resolve_reserved(8)


def test_reserved_siblings_rejected():
    system = small_system()
    with pytest.raises(ValueError):
        Holmes(system, HolmesConfig(reserved_cpus=[0, 8]))  # siblings


# -- monitor -------------------------------------------------------------------


def test_monitor_discovers_and_forgets_containers():
    system = small_system()
    holmes = Holmes(system)
    nm = NodeManager(system)
    tiny = BatchJobSpec(name="t", iterations=3, mem_lines=100,
                        mem_dram_frac=0.5, comp_cycles=100_000)
    job = nm.launch_job(tiny, tasks_per_container=1)
    sample = holmes.monitor.collect()
    assert len(sample.new_containers) == 1
    assert sample.new_containers[0].name == job.containers[0].container_id
    system.run()  # job finishes; NodeManager removes the cgroup
    sample = holmes.monitor.collect()
    assert len(sample.gone_containers) == 1


def test_monitor_serving_detection():
    system = small_system()
    holmes = Holmes(system)
    proc = system.spawn_process("svc")
    until = 40_000.0
    proc.spawn_thread(lambda th: service_like_body(th, until), affinity={0})
    holmes.register_lc_service(proc.pid)
    status = holmes.monitor.lc_services[proc.pid]

    serving_seen = []

    def observer(env):
        while env.now < until + 30_000:
            yield env.timeout(1_000.0)
            holmes.monitor.collect()
            serving_seen.append((env.now, status.serving))

    system.env.process(observer(system.env))
    system.run(until=until + 30_000)
    assert any(s for (_, s) in serving_seen)  # detected while busy
    assert not serving_seen[-1][1]  # idle again after the thread exits


def test_register_unknown_pid():
    system = small_system()
    holmes = Holmes(system)
    with pytest.raises(KeyError):
        holmes.register_lc_service(424242)


# -- scheduler: Algorithm 1 ------------------------------------------------------


def test_lc_service_pinned_to_reserved():
    system = small_system()
    holmes = Holmes(system)
    proc = system.spawn_process("svc")
    t = proc.spawn_thread(lambda th: service_like_body(th, 10_000),
                          affinity=set(range(16)))
    holmes.register_lc_service(proc.pid)
    assert t.affinity == frozenset(holmes.reserved_cpus)
    system.run(until=20_000)


def test_new_container_base_allocation_on_non_sibling_cpus():
    """Algorithm 1: the container's *base* CPUs avoid LC siblings (the
    scheduler may additionally loan out siblings while the LC is idle)."""
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    nm = NodeManager(system, default_cpuset=holmes.non_reserved_cpus())
    job = nm.launch_job(HEAVY_MEM_JOB, tasks_per_container=2)
    system.run(until=500.0)  # a few Holmes ticks
    info = next(iter(holmes.monitor.containers.values()))
    lc_siblings = {system.server.topology.sibling(c) for c in holmes.lc_cpus}
    assert info.cpus  # placed
    assert not (info.cpus & lc_siblings)
    # reserved CPUs are never handed to batch, loans included
    cpuset = job.containers[0].process.threads[0].affinity
    assert not (cpuset & set(holmes.reserved_cpus))


# -- scheduler: Algorithm 2 (deallocate on VPI >= E) --------------------------------


def _holmes_with_interference(s_hold_us=20_000.0, duration=60_000.0):
    """LC service on lcpu0 + a heavy-memory container granted its sibling."""
    system = small_system()
    cfg = HolmesConfig(n_reserved=4, s_hold_us=s_hold_us)
    holmes = Holmes(system, cfg)
    proc = system.spawn_process("svc")
    proc.spawn_thread(lambda th: service_like_body(th, duration), affinity={0})
    holmes.register_lc_service(proc.pid)
    holmes.start()
    nm = NodeManager(system, default_cpuset=holmes.non_reserved_cpus())
    job = nm.launch_job(HEAVY_MEM_JOB, tasks_per_container=2)
    return system, holmes, job


def test_sibling_deallocated_on_interference():
    # S = forever so the loan is not re-granted and the end state is clean
    system, holmes, job = _holmes_with_interference(s_hold_us=1e12)
    # force the batch container onto the LC sibling (lcpu 8)
    def intruder(env):
        yield env.timeout(5_000.0)
        info = next(iter(holmes.monitor.containers.values()))
        info.sibling_grants.add(8)
        info.cgroup.set_cpuset({8})
        info.cpus = set()
    system.env.process(intruder(system.env))
    system.run(until=40_000.0)
    dealloc = [e for e in holmes.scheduler.events if e.action == "dealloc_sibling"]
    assert dealloc, "no deallocation happened"
    # reaction within a handful of ticks of the intrusion
    assert dealloc[0].time < 5_000.0 + 60 * 50.0
    # and the container is off the sibling again
    info = next(iter(holmes.monitor.containers.values()))
    assert 8 not in info.cgroup.effective_cpuset()


def test_sibling_reallocated_after_s_hold():
    """Algorithm 2 lines 12-15 / Algorithm 3: siblings return to batch
    after S of calm (and stay with batch once traffic has ended)."""
    system, holmes, job = _holmes_with_interference(s_hold_us=10_000.0)
    system.run(until=200_000.0)
    realloc = [e for e in holmes.scheduler.events if e.action == "realloc_sibling"]
    assert realloc
    # traffic ended at 60 ms: by the end every LC sibling is on loan again
    granted = set()
    for info in holmes.monitor.containers.values():
        granted |= info.sibling_grants
    topo = system.server.topology
    assert granted == {topo.sibling(c) for c in holmes.lc_cpus}


def test_expansion_beyond_t():
    """Algorithm 2 lines 17-20: usage > T grows the LC CPU set."""
    system = small_system()
    cfg = HolmesConfig(n_reserved=2, t_expand=0.8)
    holmes = Holmes(system, cfg)
    proc = system.spawn_process("svc")
    # four service threads on two reserved CPUs: usage ~100% > T
    for i in range(4):
        proc.spawn_thread(lambda th: service_like_body(th, 50_000),
                          affinity={0, 1}, name=f"w{i}")
    holmes.register_lc_service(proc.pid)
    holmes.start()
    system.run(until=50_000.0)
    expands = [e for e in holmes.scheduler.events if e.action == "expand"]
    assert expands
    assert len(holmes.lc_cpus) > 2
    # expansion CPUs are never siblings of existing LC CPUs
    topo = system.server.topology
    lc = holmes.lc_cpus
    for c in lc:
        assert topo.sibling(c) not in lc


def test_contraction_after_traffic_ends():
    system = small_system()
    cfg = HolmesConfig(n_reserved=2, t_expand=0.8)
    holmes = Holmes(system, cfg)
    proc = system.spawn_process("svc")
    for i in range(4):
        proc.spawn_thread(lambda th: service_like_body(th, 30_000),
                          affinity={0, 1}, name=f"w{i}")
    holmes.register_lc_service(proc.pid)
    holmes.start()
    system.run(until=100_000.0)
    assert [e for e in holmes.scheduler.events if e.action == "expand"]
    assert [e for e in holmes.scheduler.events if e.action == "contract"]
    assert holmes.lc_cpus == holmes.reserved_cpus


# -- daemon ---------------------------------------------------------------------


def test_daemon_tick_rate():
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    system.run(until=10_000.0)
    assert holmes.ticks == pytest.approx(200, abs=2)  # 10ms / 50us


def test_daemon_double_start_rejected():
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    with pytest.raises(RuntimeError):
        holmes.start()


def test_daemon_stop():
    system = small_system()
    holmes = Holmes(system)
    holmes.start()

    def stopper(env):
        yield env.timeout(5_000.0)
        holmes.stop()

    system.env.process(stopper(system.env))
    system.run(until=20_000.0)
    assert holmes.ticks <= 101


def test_overhead_estimate_in_paper_range():
    """Section 6.6: ~1.3-3% CPU, ~2 MB memory."""
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    system.run(until=20_000.0)
    ov = holmes.estimated_overhead()
    assert 0.013 <= ov["cpu_fraction"] <= 0.03
    assert ov["resident_bytes"] < 16 * 1024 * 1024
    assert ov["ticks"] > 0


def test_vpi_history_recorded():
    system = small_system()
    holmes = Holmes(system, record_vpi_every=10)
    holmes.start()
    system.run(until=20_000.0)
    assert len(holmes.vpi_history) == pytest.approx(40, abs=2)
