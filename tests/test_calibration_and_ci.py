"""Tests for calibration helpers and bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci
from repro.hw import HWConfig
from repro.hw.calibration import (
    calibrate_to_fig2_targets,
    measure_block_latencies,
)


def test_default_config_hits_paper_targets():
    alone, contended = measure_block_latencies(HWConfig())
    assert alone == pytest.approx(1400, rel=0.02)
    assert contended == pytest.approx(2300, rel=0.03)


def test_calibration_roundtrip():
    """Derive a config for different targets; measuring it matches."""
    cfg = calibrate_to_fig2_targets(900.0, 1800.0)
    alone, contended = measure_block_latencies(cfg)
    assert alone == pytest.approx(900, rel=0.01)
    assert contended == pytest.approx(1800, rel=0.01)


def test_calibration_preserves_other_fields():
    base = HWConfig(sockets=1, cores_per_socket=4, seed=99)
    cfg = calibrate_to_fig2_targets(1000.0, 1500.0, base=base)
    assert cfg.sockets == 1 and cfg.seed == 99
    assert cfg.smt_mem_on_mem == pytest.approx(0.5)


def test_calibration_validation():
    with pytest.raises(ValueError):
        calibrate_to_fig2_targets(-1.0, 100.0)
    with pytest.raises(ValueError):
        calibrate_to_fig2_targets(1000.0, 900.0)


def test_bootstrap_ci_covers_mean():
    rng = np.random.default_rng(1)
    data = rng.normal(100.0, 10.0, size=500)
    lo, hi = bootstrap_ci(data, rng=np.random.default_rng(2))
    assert lo < data.mean() < hi
    # interval is narrow for 500 samples of sigma 10
    assert hi - lo < 4.0


def test_bootstrap_ci_separates_distinct_populations():
    rng = np.random.default_rng(3)
    a = rng.exponential(50.0, size=400)
    b = rng.exponential(80.0, size=400)
    lo_a, hi_a = bootstrap_ci(a, rng=np.random.default_rng(4))
    lo_b, hi_b = bootstrap_ci(b, rng=np.random.default_rng(5))
    assert hi_a < lo_b  # clearly separated


def test_bootstrap_ci_custom_stat():
    rng = np.random.default_rng(6)
    data = rng.normal(0.0, 1.0, size=300)
    lo, hi = bootstrap_ci(data, stat=lambda x: np.percentile(x, 90),
                          rng=np.random.default_rng(7))
    assert lo < np.percentile(data, 90) < hi


def test_bootstrap_ci_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([1.0])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.5)
