"""Unit tests for repro.analysis."""

import math

import numpy as np
import pytest

from repro.analysis import (
    format_cdf_sparkline,
    format_table,
    normalize_to_baseline,
    pearson,
    percentile_summary,
    slo_from_alone,
    violation_ratio,
)


def test_pearson_known_value():
    x = [1, 2, 3, 4, 5]
    y = [2, 1, 4, 3, 5]
    expected = np.corrcoef(x, y)[0, 1]
    assert pearson(x, y) == pytest.approx(expected)


def test_pearson_validation():
    with pytest.raises(ValueError):
        pearson([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        pearson([1], [1])
    with pytest.raises(ValueError):
        pearson([1, 1, 1], [1, 2, 3])


def test_normalize_to_baseline():
    # the paper's Fig 5 semantics: 0.3 == "30% higher than Alone"
    assert normalize_to_baseline(130.0, 100.0) == pytest.approx(0.3)
    assert normalize_to_baseline(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        normalize_to_baseline(1.0, 0.0)


def test_percentile_summary_empty():
    s = percentile_summary([])
    assert math.isnan(s["mean"])
    assert math.isnan(s["p99"])


def test_slo_from_alone_is_p90():
    lats = list(range(1, 101))
    assert slo_from_alone(lats) == pytest.approx(np.percentile(lats, 90))
    with pytest.raises(ValueError):
        slo_from_alone([])


def test_violation_ratio():
    lats = [10, 20, 30, 40]
    assert violation_ratio(lats, 25) == 0.5
    assert violation_ratio(lats, 100) == 0.0
    assert math.isnan(violation_ratio([], 10))
    with pytest.raises(ValueError):
        violation_ratio(lats, 0)


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "---" in lines[1]
    assert "22.2" in lines[3]
    # columns right-aligned: all lines same length
    assert len({len(l) for l in lines}) == 1


def test_sparkline_basics():
    assert format_cdf_sparkline([]) == "(empty)"
    line = format_cdf_sparkline([10.0] * 50 + [1000.0] * 50, n_bins=20)
    assert len(line) == 20
    assert line[0] != " " and line[-1] != " "
    # a constant distribution degenerates gracefully
    assert len(format_cdf_sparkline([5.0, 5.0, 5.0], n_bins=10)) == 10
