"""Integration tests for the four latency-critical services."""

import numpy as np
import pytest

from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads import MemoryProber
from repro.workloads.kv import (
    MemcachedService,
    RedisService,
    RocksDBService,
    WiredTigerService,
    make_service,
)
from repro.ycsb import WORKLOAD_A, WORKLOAD_B, YCSBClient
from repro.ycsb.workloads import Query


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def run_service(service_cls, spec, rate_qps, duration_us=300_000, n_keys=20_000,
                lcpus=(0, 1), system=None, **service_kwargs):
    system = system or small_system()
    service = service_cls(system, n_keys=n_keys, **service_kwargs)
    service.start(lcpus=set(lcpus))
    client = YCSBClient(
        system.env, service, spec, rate_qps, np.random.default_rng(5)
    )
    client.start(duration_us)
    system.run(until=duration_us + 50_000)
    return system, service, client


def test_redis_serves_workload_a():
    _, service, client = run_service(RedisService, WORKLOAD_A, rate_qps=10_000)
    assert service.completed > 2000
    assert service.completed <= client.submitted
    # sane microsecond-scale latencies
    assert 20 < service.recorder.mean() < 500
    assert service.recorder.p99() < 5_000


def test_redis_single_worker():
    system = small_system()
    service = RedisService(system, n_keys=1000)
    service.start(lcpus={0, 1})
    workers = [t for t in service.proc.threads if "/w" in t.name]
    assert len(workers) == 1


def test_redis_scan_heavier_than_read():
    system = small_system()
    service = RedisService(system, n_keys=5000)
    service.start(lcpus={0})
    service.submit(Query(op="read", key=10), system.env.now)
    service.submit(Query(op="scan", key=10, scan_len=50), system.env.now)
    system.run(until=100_000)
    reads = service.recorder.latencies("read")
    scans = service.recorder.latencies("scan")
    assert scans[0] > reads[0] * 5


def test_memcached_multi_worker_and_no_scan():
    system = small_system()
    service = MemcachedService(system, n_keys=1000)
    service.start(lcpus={0, 1, 2, 3})
    workers = [t for t in service.proc.threads if "/w" in t.name]
    assert len(workers) == 4
    with pytest.raises(ValueError):
        service.submit(Query(op="scan", key=1, scan_len=10), 0.0)


def test_memcached_serves_workload_b():
    _, service, _ = run_service(
        MemcachedService, WORKLOAD_B, rate_qps=20_000, lcpus=(0, 1, 2, 3)
    )
    assert service.completed > 4000
    assert 20 < service.recorder.mean() < 400


def test_rocksdb_stair_cdf():
    """Disk-backed store: cache hits fast, disk misses slow (Fig. 8 shape)."""
    _, service, _ = run_service(
        RocksDBService, WORKLOAD_B, rate_qps=8_000, lcpus=(0, 1, 2, 3),
        duration_us=400_000,
    )
    assert service.completed > 1500
    assert service.disk_reads > 50
    assert service.cache_hits > 50
    lat = service.recorder.latencies("read")
    p25, p90 = np.percentile(lat, [25, 90])
    # the slow step sits well above the fast step
    assert p90 > p25 + 80


def test_rocksdb_updates_faster_than_reads():
    """Async memtable writes return quicker than reads (paper Sec. 6.2)."""
    _, service, _ = run_service(
        RocksDBService, WORKLOAD_A, rate_qps=8_000, lcpus=(0, 1, 2, 3),
        duration_us=400_000,
    )
    reads = service.recorder.latencies("read")
    updates = service.recorder.latencies("update")
    assert np.percentile(updates, 90) < np.percentile(reads, 90)


def test_rocksdb_flush_and_compaction_happen():
    system, service, _ = run_service(
        RocksDBService, WORKLOAD_A, rate_qps=15_000, lcpus=(0, 1, 2, 3),
        duration_us=800_000, n_keys=10_000, memtable_entries=512,
        l0_compaction_trigger=2,
    )
    assert service.lsm.flushes >= 2
    assert service.lsm.compactions >= 1


def test_wiredtiger_serves_and_caches():
    _, service, _ = run_service(
        WiredTigerService, WORKLOAD_B, rate_qps=8_000, lcpus=(0, 1, 2, 3),
        duration_us=400_000,
    )
    assert service.completed > 1500
    assert service.page_cache.hit_rate > 0.3  # Zipfian keeps the hot set
    assert service.disk_reads > 10


def test_wiredtiger_eviction_writes_back():
    system, service, _ = run_service(
        WiredTigerService, WORKLOAD_A, rate_qps=10_000, lcpus=(0, 1, 2, 3),
        duration_us=600_000, cache_fraction=0.05,  # tiny cache forces eviction
    )
    assert service.evicted_writes > 0
    assert service.btree.get(0) is not None


def test_make_service_factory():
    system = small_system()
    s = make_service("redis", system, n_keys=100)
    assert isinstance(s, RedisService)
    with pytest.raises(KeyError):
        make_service("cassandra", system)


def test_interference_raises_redis_latency():
    """The core phenomenon: probers on sibling lcpus inflate query latency."""
    # run 1: alone
    _, svc_alone, _ = run_service(
        RedisService, WORKLOAD_A, rate_qps=15_000, lcpus=(0,),
        duration_us=300_000,
    )
    # run 2: prober saturating the sibling
    system = small_system()
    sib = system.server.topology.sibling(0)
    prober = MemoryProber(system, lcpu=sib, rps=200_000)
    prober.start(duration_us=350_000)
    _, svc_hot, _ = run_service(
        RedisService, WORKLOAD_A, rate_qps=15_000, lcpus=(0,),
        duration_us=300_000, system=system,
    )
    assert svc_hot.recorder.mean() > svc_alone.recorder.mean() * 1.2
    assert svc_hot.recorder.p99() > svc_alone.recorder.p99()


def test_queue_backlog_counts_rejections():
    system = small_system()
    service = RedisService(system, n_keys=100, queue_capacity=5)
    for i in range(10):
        service.submit(Query(op="read", key=i), 0.0)
    assert service.rejected == 5


def test_service_double_start_rejected():
    system = small_system()
    service = RedisService(system, n_keys=100)
    service.start(lcpus={0})
    with pytest.raises(RuntimeError):
        service.start(lcpus={1})
    with pytest.raises(ValueError):
        RedisService(system, n_keys=100, name="r2").start(lcpus=set())
