"""Tests for the execution-tracing subsystem."""

import pytest

from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.tracing import ExecutionTracer, gantt, occupancy, sibling_overlap


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def mem_body(thread, until):
    while thread.env.now < until:
        yield from thread.exec(MemOp(lines=1000, dram_frac=0.8))


def comp_body(thread, until):
    while thread.env.now < until:
        yield from thread.exec(CompOp(cycles=120_000))


def test_tracer_records_quanta():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 1_000), affinity={0})
    system.run(until=2_000)
    tracer.detach()
    recs = tracer.records(lcpu=0)
    assert recs
    assert all(r.kind == "mem" for r in recs)
    assert all(r.duration > 0 for r in recs)
    # quanta tile the busy period without overlap
    recs.sort(key=lambda r: r.start)
    for a, b in zip(recs, recs[1:]):
        assert b.start >= a.end - 1e-9


def test_tracer_busy_time_matches_server_accounting():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 5_000), affinity={2})
    system.run(until=6_000)
    assert tracer.busy_time(2) == pytest.approx(system.server.busy_us[2])
    assert tracer.busy_time(3) == 0.0


def test_tracer_single_hook_enforced():
    system = small_system()
    t1 = ExecutionTracer(system)
    t1.attach()
    t2 = ExecutionTracer(system)
    with pytest.raises(RuntimeError):
        t2.attach()
    t1.detach()
    t2.attach()  # fine now


def test_tracer_attach_idempotent():
    """Re-attaching an attached tracer is a no-op: no double hook, no
    buffer clobber.  Regression: attach/detach used to compare the hook
    with ``is`` against a fresh bound method, so detach silently left
    the hook installed."""
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 1_000), affinity={0})
    system.run(until=1_500)
    n = len(tracer)
    assert n > 0
    tracer.attach()  # no-op: already this tracer's hook
    assert len(tracer) == n  # buffers untouched
    system.run(until=3_000)
    assert len(tracer) == n  # thread finished; no double-record either
    tracer.detach()
    assert system.quantum_hook is None
    tracer.detach()  # idempotent
    assert system.quantum_hook is None


def test_tracer_detach_spares_other_tracers_hook():
    """A stale detach must not clobber a hook installed afterwards."""
    system = small_system()
    t1 = ExecutionTracer(system)
    t1.attach()
    t1.detach()
    t2 = ExecutionTracer(system)
    t2.attach()
    t1.detach()  # stale: t1 is already detached
    assert system.quantum_hook is not None  # t2's hook survives
    with pytest.raises(RuntimeError):
        t1.attach()  # t2 holds the hook


def test_tracer_caps_records():
    system = small_system()
    tracer = ExecutionTracer(system, max_records=10)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 10_000), affinity={0})
    system.run(until=11_000)
    assert len(tracer) == 10
    assert tracer.dropped > 0


def test_occupancy_from_trace():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 2_000), affinity={1})
    system.run(until=4_000)
    occ = occupancy(tracer, 0.0, 4_000.0)
    assert occ[1] == pytest.approx(0.5, abs=0.05)
    with pytest.raises(ValueError):
        occupancy(tracer, 10.0, 10.0)


def test_sibling_overlap_detects_concurrent_mem():
    system = small_system()
    sib = system.server.topology.sibling(0)
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 3_000), affinity={0})
    proc.spawn_thread(lambda th: mem_body(th, 3_000), affinity={sib})
    system.run(until=4_000)
    # both streams run ~continuously: overlap ~= 1.0
    assert sibling_overlap(tracer, system, 0) > 0.9
    # a non-sibling pair records no overlap through this lens
    assert sibling_overlap(tracer, system, 1) == 0.0


def test_sibling_overlap_zero_when_exclusive():
    """Alternating (never-concurrent) siblings measure ~zero overlap."""
    system = small_system()
    sib = system.server.topology.sibling(0)
    tracer = ExecutionTracer(system)
    tracer.attach()

    def ping(thread):
        for _ in range(10):
            yield from thread.exec(MemOp(lines=500, dram_frac=0.8))
            yield from thread.sleep(100.0)

    def pong(thread):
        yield from thread.sleep(50.0)
        for _ in range(10):
            yield from thread.exec(MemOp(lines=300, dram_frac=0.8))
            yield from thread.sleep(120.0)

    proc = system.spawn_process("p")
    proc.spawn_thread(ping, affinity={0})
    proc.spawn_thread(pong, affinity={sib})
    system.run()
    ov = sibling_overlap(tracer, system, 0)
    assert ov < 0.6  # mostly exclusive (they do collide occasionally)


def test_gantt_rendering():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 1_000), affinity={0})
    proc.spawn_thread(lambda th: comp_body(th, 1_000), affinity={1})
    system.run(until=2_000)
    out = gantt(tracer, lcpus=[0, 1, 2], width=40)
    lines = out.splitlines()
    assert lines[0].startswith("lcpu  0")
    assert "M" in lines[0] or "m" in lines[0]
    assert "C" in lines[1] or "c" in lines[1]
    assert set(lines[2].split("|")[1]) == {"."}  # lcpu 2 idle


def test_gantt_empty():
    system = small_system()
    tracer = ExecutionTracer(system)
    assert gantt(tracer, lcpus=[0]) == "(empty trace)"


def test_occupancy_empty_trace():
    """A tracer that never saw a quantum reports no per-CPU rows."""
    system = small_system()
    tracer = ExecutionTracer(system)
    assert occupancy(tracer, 0.0, 1_000.0) == {}


def test_occupancy_epsilon_window():
    """A vanishingly thin window inside one quantum: the busy fraction
    is exact (1.0 inside a quantum, 0.0 outside), not NaN or inf."""
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 2_000), affinity={0})
    system.run(until=3_000)
    recs = tracer.records(lcpu=0)
    mid = recs[0].start + recs[0].duration / 2
    eps = 1e-9
    occ = occupancy(tracer, mid, mid + eps)
    assert occ[0] == pytest.approx(1.0)
    # the same epsilon window long after everything finished
    occ = occupancy(tracer, 50_000.0, 50_000.0 + eps)
    assert occ[0] == 0.0
    # t1 == t0 exactly is still rejected
    with pytest.raises(ValueError):
        occupancy(tracer, mid, mid)


def test_gantt_single_quantum_window():
    """Default bounds collapse to one quantum's extent and still render
    a full-width row."""
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")

    def one_op(thread):
        yield from thread.exec(CompOp(cycles=50_000))

    proc.spawn_thread(one_op, affinity={0})
    system.run(until=10_000)
    assert len(tracer) == 1
    out = gantt(tracer, lcpus=[0], width=20)
    row = out.splitlines()[0].split("|")[1]
    assert len(row) == 20
    assert set(row) <= {"C", "c"}  # fully busy, no idle cells


def test_gantt_degenerate_window():
    """An explicit empty/inverted window renders the sentinel, not a
    divide-by-zero."""
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 500), affinity={0})
    system.run(until=1_000)
    assert gantt(tracer, lcpus=[0], t0=100.0, t1=100.0) == "(empty window)"
    assert gantt(tracer, lcpus=[0], t0=200.0, t1=100.0) == "(empty window)"


def test_gantt_with_gaps():
    """Idle gaps between quanta render as '.' cells between busy runs."""
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")

    def burst_sleep_burst(thread):
        yield from thread.exec(CompOp(cycles=100_000))
        yield from thread.sleep(2_000.0)
        yield from thread.exec(CompOp(cycles=100_000))

    proc.spawn_thread(burst_sleep_burst, affinity={0})
    system.run(until=10_000)
    out = gantt(tracer, lcpus=[0], width=40)
    row = out.splitlines()[0].split("|")[1]
    assert "." in row  # the sleep gap
    busy = [i for i, ch in enumerate(row) if ch in "Cc"]
    idle_between = [
        i for i in range(busy[0], busy[-1]) if row[i] == "."
    ]
    assert idle_between  # gap sits between the two bursts
