"""Tests for the execution-tracing subsystem."""

import pytest

from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.tracing import ExecutionTracer, gantt, occupancy, sibling_overlap


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def mem_body(thread, until):
    while thread.env.now < until:
        yield from thread.exec(MemOp(lines=1000, dram_frac=0.8))


def comp_body(thread, until):
    while thread.env.now < until:
        yield from thread.exec(CompOp(cycles=120_000))


def test_tracer_records_quanta():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 1_000), affinity={0})
    system.run(until=2_000)
    tracer.detach()
    recs = tracer.records(lcpu=0)
    assert recs
    assert all(r.kind == "mem" for r in recs)
    assert all(r.duration > 0 for r in recs)
    # quanta tile the busy period without overlap
    recs.sort(key=lambda r: r.start)
    for a, b in zip(recs, recs[1:]):
        assert b.start >= a.end - 1e-9


def test_tracer_busy_time_matches_server_accounting():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 5_000), affinity={2})
    system.run(until=6_000)
    assert tracer.busy_time(2) == pytest.approx(system.server.busy_us[2])
    assert tracer.busy_time(3) == 0.0


def test_tracer_single_hook_enforced():
    system = small_system()
    t1 = ExecutionTracer(system)
    t1.attach()
    t2 = ExecutionTracer(system)
    with pytest.raises(RuntimeError):
        t2.attach()
    t1.detach()
    t2.attach()  # fine now


def test_tracer_caps_records():
    system = small_system()
    tracer = ExecutionTracer(system, max_records=10)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 10_000), affinity={0})
    system.run(until=11_000)
    assert len(tracer) == 10
    assert tracer.dropped > 0


def test_occupancy_from_trace():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: comp_body(th, 2_000), affinity={1})
    system.run(until=4_000)
    occ = occupancy(tracer, 0.0, 4_000.0)
    assert occ[1] == pytest.approx(0.5, abs=0.05)
    with pytest.raises(ValueError):
        occupancy(tracer, 10.0, 10.0)


def test_sibling_overlap_detects_concurrent_mem():
    system = small_system()
    sib = system.server.topology.sibling(0)
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 3_000), affinity={0})
    proc.spawn_thread(lambda th: mem_body(th, 3_000), affinity={sib})
    system.run(until=4_000)
    # both streams run ~continuously: overlap ~= 1.0
    assert sibling_overlap(tracer, system, 0) > 0.9
    # a non-sibling pair records no overlap through this lens
    assert sibling_overlap(tracer, system, 1) == 0.0


def test_sibling_overlap_zero_when_exclusive():
    """Alternating (never-concurrent) siblings measure ~zero overlap."""
    system = small_system()
    sib = system.server.topology.sibling(0)
    tracer = ExecutionTracer(system)
    tracer.attach()

    def ping(thread):
        for _ in range(10):
            yield from thread.exec(MemOp(lines=500, dram_frac=0.8))
            yield from thread.sleep(100.0)

    def pong(thread):
        yield from thread.sleep(50.0)
        for _ in range(10):
            yield from thread.exec(MemOp(lines=300, dram_frac=0.8))
            yield from thread.sleep(120.0)

    proc = system.spawn_process("p")
    proc.spawn_thread(ping, affinity={0})
    proc.spawn_thread(pong, affinity={sib})
    system.run()
    ov = sibling_overlap(tracer, system, 0)
    assert ov < 0.6  # mostly exclusive (they do collide occasionally)


def test_gantt_rendering():
    system = small_system()
    tracer = ExecutionTracer(system)
    tracer.attach()
    proc = system.spawn_process("p")
    proc.spawn_thread(lambda th: mem_body(th, 1_000), affinity={0})
    proc.spawn_thread(lambda th: comp_body(th, 1_000), affinity={1})
    system.run(until=2_000)
    out = gantt(tracer, lcpus=[0, 1, 2], width=40)
    lines = out.splitlines()
    assert lines[0].startswith("lcpu  0")
    assert "M" in lines[0] or "m" in lines[0]
    assert "C" in lines[1] or "c" in lines[1]
    assert set(lines[2].split("|")[1]) == {"."}  # lcpu 2 idle


def test_gantt_empty():
    system = small_system()
    tracer = ExecutionTracer(system)
    assert gantt(tracer, lcpus=[0]) == "(empty trace)"
