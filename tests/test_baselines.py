"""Unit tests for the baseline controllers (repro.baselines)."""

import pytest

from repro.baselines import CaladanLike, HeraclesLike, PartiesLike, PerfIso
from repro.baselines.perfiso import PerfIsoConfig
from repro.hw import CompOp, HWConfig, MemOp
from repro.oskernel import System
from repro.workloads.batch import BatchJobSpec
from repro.yarnlike import NodeManager


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


HOG = BatchJobSpec(name="hog", iterations=1_000_000, mem_lines=8000,
                   mem_dram_frac=0.9, comp_cycles=100_000)


def lc_body(thread, until):
    while thread.env.now < until:
        yield from thread.exec(MemOp(lines=1200, dram_frac=0.15))
        yield from thread.exec(CompOp(cycles=8_000))


# -- PerfIso -----------------------------------------------------------------


def test_perfiso_batch_pool_is_smt_oblivious():
    system = small_system()
    perfiso = PerfIso(system, lc_cpus=[0, 1, 2, 3])
    # the pool contains every non-LC logical CPU, LC siblings included
    assert 8 in perfiso.full_pool and 9 in perfiso.full_pool
    assert 0 not in perfiso.full_pool


def test_perfiso_requires_lc_cpus():
    with pytest.raises(ValueError):
        PerfIso(small_system(), lc_cpus=[])


def test_perfiso_maintains_idle_buffer():
    system = small_system()
    perfiso = PerfIso(system, lc_cpus=[0, 1, 2, 3],
                      config=PerfIsoConfig(buffer_size=2))
    perfiso.start()
    nm = NodeManager(system, default_cpuset=None)
    nm.launch_job(HOG, tasks_per_container=12)
    system.run(until=100_000)
    # 12 pool CPUs - buffer: the pool shrank, leaving ~2 idle
    assert len(perfiso.batch_cpus) <= 10
    assert len(perfiso.batch_cpus) >= 8
    assert perfiso.adjustments > 0


def test_perfiso_double_start():
    system = small_system()
    p = PerfIso(system, lc_cpus=[0])
    p.start()
    with pytest.raises(RuntimeError):
        p.start()


def test_perfiso_grows_pool_back():
    system = small_system()
    perfiso = PerfIso(system, lc_cpus=[0, 1, 2, 3],
                      config=PerfIsoConfig(buffer_size=2))
    perfiso.start()
    nm = NodeManager(system, default_cpuset=None)
    job = nm.launch_job(HOG, tasks_per_container=12)

    def killer(env):
        yield env.timeout(60_000.0)
        nm.kill_job(job)

    system.env.process(killer(system.env))
    system.run(until=200_000)
    # all batch work gone: the pool returns to full size
    assert perfiso.batch_cpus == set(perfiso.full_pool)


# -- feedback controllers ------------------------------------------------------


def _with_interference(controller_cls, **kwargs):
    system = small_system()
    svc = system.spawn_process("lc")
    svc.spawn_thread(lambda th: lc_body(th, 10_000_000.0), affinity={0})
    ctl = controller_cls(system, lc_cpus=[0, 1, 2, 3], **kwargs)
    ctl.start()
    nm = NodeManager(system)
    sib = system.server.topology.sibling(0)
    nm.launch_job(HOG, tasks_per_container=1, cpuset={sib})
    return system, ctl, sib


def test_heracles_isolates_after_two_epochs():
    system, ctl, sib = _with_interference(HeraclesLike, epoch_us=100_000.0)
    system.run(until=350_000)
    assert ctl.stage == 2
    assert sib not in ctl.batch_cpus
    assert ctl.converged_at == pytest.approx(200_000.0, rel=0.01)


def test_heracles_restores_when_calm():
    system = small_system()
    # LC serves only briefly; after it stops, slack returns
    svc = system.spawn_process("lc")
    svc.spawn_thread(lambda th: lc_body(th, 150_000.0), affinity={0})
    ctl = HeraclesLike(system, lc_cpus=[0, 1, 2, 3], epoch_us=100_000.0)
    ctl.start()
    nm = NodeManager(system)
    sib = system.server.topology.sibling(0)
    nm.launch_job(HOG, tasks_per_container=1, cpuset={sib})
    system.run(until=600_000)
    assert ctl.stage == 0
    assert sib in ctl.batch_cpus  # siblings handed back


def test_parties_walks_the_ladder():
    system, ctl, sib = _with_interference(PartiesLike, step_us=50_000.0)
    system.run(until=400_000)
    resources = [r for _, r in ctl.actions]
    assert resources[:3] == ["frequency", "cores", "hyperthreads"]
    assert ctl.converged_at == pytest.approx(150_000.0, rel=0.01)
    assert sib not in ctl.batch_cpus


def test_caladan_reacts_within_intervals():
    system, ctl, sib = _with_interference(CaladanLike, interval_us=10.0)
    system.run(until=5_000)
    assert ctl.isolated
    assert ctl.converged_at is not None
    assert ctl.converged_at <= 100.0  # a few 10us polls
    assert sib not in ctl.batch_cpus


def test_caladan_restores_when_lc_idle():
    system = small_system()
    svc = system.spawn_process("lc")
    svc.spawn_thread(lambda th: lc_body(th, 20_000.0), affinity={0})
    ctl = CaladanLike(system, lc_cpus=[0, 1, 2, 3])
    ctl.start()
    nm = NodeManager(system)
    sib = system.server.topology.sibling(0)
    nm.launch_job(HOG, tasks_per_container=1, cpuset={sib})
    system.run(until=60_000)
    assert not ctl.isolated
    assert sib in ctl.batch_cpus
