"""Tests for the Section 2.2 microbenchmark and the Section 3.1 prober."""

import pytest

from repro.hw import HWConfig
from repro.oskernel import System
from repro.workloads import MemoryProber, run_m_threads


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


def test_single_m_thread_baseline():
    """Fig 2 case 1: ~1,400us per 1 MB block."""
    system = small_system()
    results = run_m_threads(system, m_lcpus=[0], duration_us=30_000)
    mean = results[0].recorder.mean()
    assert mean == pytest.approx(1400, rel=0.05)


def test_two_m_threads_separate_cores():
    """Fig 2 case 2: same as baseline -- no controller/bandwidth effect."""
    system = small_system()
    results = run_m_threads(system, m_lcpus=[0, 1], duration_us=30_000)
    for r in results:
        assert r.recorder.mean() == pytest.approx(1400, rel=0.05)


def test_two_m_threads_sibling_lcpus():
    """Fig 2 case 3: HT siblings -> ~2,300us."""
    system = small_system()
    sib = system.server.topology.sibling(0)
    results = run_m_threads(system, m_lcpus=[0, sib], duration_us=30_000)
    for r in results:
        assert r.recorder.mean() == pytest.approx(2300, rel=0.08)


def test_m_threads_all_cores_no_bandwidth_bottleneck():
    """Fig 2 case 4: one m-thread per core, still ~1,400us."""
    system = small_system()
    results = run_m_threads(system, m_lcpus=list(range(8)), duration_us=20_000)
    for r in results:
        assert r.recorder.mean() == pytest.approx(1400, rel=0.05)


def test_m_threads_all_lcpus_ht_dominates():
    """Fig 2 case 5: all hyperthreads -> sibling effect, not bandwidth."""
    system = small_system()
    results = run_m_threads(system, m_lcpus=list(range(16)), duration_us=20_000)
    for r in results:
        assert r.recorder.mean() == pytest.approx(2300, rel=0.08)


def test_c_thread_sibling_mild_effect():
    """Fig 2 case 6: compute sibling degrades memory access mildly."""
    system = small_system()
    m_lcpus = list(range(4))
    c_lcpus = [system.server.topology.sibling(c) for c in m_lcpus]
    results = run_m_threads(system, m_lcpus=m_lcpus, c_lcpus=c_lcpus,
                            duration_us=20_000)
    for r in results:
        assert 1450 < r.recorder.mean() < 1750


def test_prober_tracks_target_rate():
    system = small_system()
    prober = MemoryProber(system, lcpu=0, rps=20_000)
    prober.start(duration_us=200_000)  # 0.2 s
    system.run()
    assert prober.achieved_rps() == pytest.approx(20_000, rel=0.05)


def test_prober_saturates_alone_near_74k():
    """The paper's one-thread saturation point (~74 kRPS)."""
    system = small_system()
    prober = MemoryProber(system, lcpu=0, rps=200_000)  # far above capacity
    prober.start(duration_us=200_000)
    system.run()
    assert prober.achieved_rps() == pytest.approx(74_000, rel=0.05)


def test_prober_saturates_contended_near_45k():
    """The paper's two-thread saturation point (~45 kRPS)."""
    system = small_system()
    sib = system.server.topology.sibling(0)
    p1 = MemoryProber(system, lcpu=0, rps=200_000, name="p1")
    p2 = MemoryProber(system, lcpu=sib, rps=200_000, name="p2")
    p1.start(duration_us=200_000)
    p2.start(duration_us=200_000)
    system.run()
    assert p1.achieved_rps() == pytest.approx(45_000, rel=0.06)
    assert p2.achieved_rps() == pytest.approx(45_000, rel=0.06)


def test_prober_latency_rises_with_sibling_load():
    system = small_system()
    sib = system.server.topology.sibling(0)

    alone = MemoryProber(system, lcpu=0, rps=10_000, name="alone")
    alone.start(duration_us=100_000)
    system.run()

    system2 = small_system()
    sib2 = system2.server.topology.sibling(0)
    probed = MemoryProber(system2, lcpu=0, rps=10_000, name="probed")
    hog = MemoryProber(system2, lcpu=sib2, rps=200_000, name="hog")
    probed.start(duration_us=100_000)
    hog.start(duration_us=100_000)
    system2.run()

    assert probed.mean_latency() > alone.mean_latency() * 1.4


def test_prober_rejects_bad_rate():
    system = small_system()
    with pytest.raises(ValueError):
        MemoryProber(system, lcpu=0, rps=0)
