"""Tests for the vectorized cluster data plane (``repro.cluster.dataplane``).

The plane is a pure performance change, so almost everything here is an
identity check against the scalar reference path: byte-identical sweep
reports across modes, calendars and runner pool sizes, and bitwise-equal
batched counter/usage reads.  The rest is unit coverage of the mode knob,
the pooled-array wiring, and the hub fallback paths.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import canonical_dumps
from repro.cluster import Cluster
from repro.cluster.dataplane import (
    DATA_PLANE_ENV_VAR,
    DEFAULT_DATA_PLANE,
    ClusterDataPlane,
    data_plane_mode,
)
from repro.cluster.score import DEFAULT_WEIGHTS, interference_score
from repro.cluster.sweep import run_cluster_sweep
from repro.core import HolmesConfig, TelemetrySnapshot
from repro.core.vpi import VPIReader, aggregate_per_core
from repro.hw import CounterEngine, HWConfig, Server, Topology
from repro.hw.events import ALL_EVENTS
from repro.oskernel.accounting import UsageTracker
from repro.runner import ExperimentRequest, ExperimentRunner
from repro.sim import Environment

N_EVENTS = len(ALL_EVENTS)
SMALL_HW = HWConfig(sockets=1, cores_per_socket=2)
N_LCPUS = Topology(SMALL_HW).n_lcpus
N_CORES = Topology(SMALL_HW).n_cores


# -- mode resolution ---------------------------------------------------------


def test_mode_defaults_to_vectorized(monkeypatch):
    monkeypatch.delenv(DATA_PLANE_ENV_VAR, raising=False)
    assert DEFAULT_DATA_PLANE == "vectorized"
    assert data_plane_mode() == "vectorized"


def test_mode_env_and_override(monkeypatch):
    monkeypatch.setenv(DATA_PLANE_ENV_VAR, "scalar")
    assert data_plane_mode() == "scalar"
    # an explicit keyword beats the environment
    assert data_plane_mode("vectorized") == "vectorized"


def test_mode_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError):
        data_plane_mode("simd")
    monkeypatch.setenv(DATA_PLANE_ENV_VAR, "avx512")
    with pytest.raises(ValueError):
        data_plane_mode()


# -- pooled-array wiring -----------------------------------------------------


def test_cluster_pools_back_node_arrays():
    cluster = Cluster(
        n_servers=3,
        config=SMALL_HW,
        holmes_config=HolmesConfig(n_reserved=1),
        start_daemons=False,
    )
    plane = cluster.dataplane
    assert plane is not None
    assert plane.counters.shape == (3, N_LCPUS, N_EVENTS)
    for i, node in enumerate(cluster.nodes):
        server = node.system.server
        assert server.data_plane is plane
        assert np.shares_memory(server.busy_us, plane.busy[i])
        assert np.shares_memory(server.counters._values, plane.counters[i])
    # accruals land in the pool with no copying, and only in their row
    cluster.nodes[1].system.server.counters.account_compute(0, 1_000.0)
    assert plane.counters[1].sum() > 0.0
    assert plane.counters[0].sum() == 0.0
    assert plane.counters[2].sum() == 0.0


def test_scalar_mode_builds_no_plane():
    cluster = Cluster(
        n_servers=2,
        config=SMALL_HW,
        holmes_config=HolmesConfig(n_reserved=1),
        start_daemons=False,
        data_plane="scalar",
    )
    assert cluster.dataplane is None
    for node in cluster.nodes:
        assert node.system.server.data_plane is None


def test_daemonless_cluster_builds_no_plane():
    assert Cluster(n_servers=2, config=SMALL_HW).dataplane is None


def test_counter_engine_rejects_misshaped_storage():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        CounterEngine(SMALL_HW, N_LCPUS, rng, values=np.zeros((3, N_EVENTS)))


def test_vpi_hub_is_shared_until_params_mismatch():
    plane = ClusterDataPlane(1, N_LCPUS, N_CORES, N_EVENTS)
    hub = plane.vpi_hub((0, 1, 2), 1.0, 50.0, N_CORES)
    assert hub is not None
    assert plane.vpi_hub((0, 1, 2), 1.0, 50.0, N_CORES) is hub
    # a heterogeneous registrant gets None and falls back to scalar reads
    assert plane.vpi_hub((0, 1, 3), 1.0, 50.0, N_CORES) is None
    assert plane.vpi_hub((0, 1, 2), 2.0, 50.0, N_CORES) is None


# -- sweep report identity ---------------------------------------------------

SMALL_SWEEP = dict(n_nodes=3, n_jobs=12, duration_us=120_000.0, seed=7)


def _sweep_bytes(monkeypatch, mode, **kwargs):
    monkeypatch.setenv(DATA_PLANE_ENV_VAR, mode)
    return canonical_dumps(run_cluster_sweep(**{**SMALL_SWEEP, **kwargs}))


@pytest.mark.parametrize("policy", ["score", "least-loaded"])
def test_sweep_reports_identical_across_planes(monkeypatch, policy):
    vec = _sweep_bytes(monkeypatch, "vectorized", policy=policy)
    scl = _sweep_bytes(monkeypatch, "scalar", policy=policy)
    assert vec == scl


def test_observed_sweep_identical_across_planes(monkeypatch):
    # the full event stream, decision audits and all, must not notice
    # the data plane swap
    vec = _sweep_bytes(monkeypatch, "vectorized", policy="score", obs="all")
    scl = _sweep_bytes(monkeypatch, "scalar", policy="score", obs="all")
    assert vec == scl


@pytest.mark.parametrize("calendar", ["heap", "wheel"])
def test_sweep_identical_across_planes_and_calendars(monkeypatch, calendar):
    monkeypatch.setenv("REPRO_SIM_CALENDAR", calendar)
    vec = _sweep_bytes(monkeypatch, "vectorized", policy="score")
    scl = _sweep_bytes(monkeypatch, "scalar", policy="score")
    assert vec == scl


@pytest.mark.slow
def test_predictor_sweep_identical_across_planes(monkeypatch):
    vec = _sweep_bytes(monkeypatch, "vectorized", policy="predictor")
    scl = _sweep_bytes(monkeypatch, "scalar", policy="predictor")
    assert vec == scl


@pytest.mark.slow
def test_runner_reports_identical_across_planes_and_pools(monkeypatch):
    params = {
        "n_nodes": 4,
        "n_jobs": 16,
        "duration_us": 120_000.0,
        "policies": ("least-loaded", "score"),
    }
    request = ExperimentRequest.make("cluster", params, 11)
    reports = {}
    for mode, parallel in (("vectorized", 2), ("scalar", 1)):
        monkeypatch.setenv(DATA_PLANE_ENV_VAR, mode)
        report = ExperimentRunner(parallel=parallel).run([request])
        reports[mode] = canonical_dumps(report.merged())
    assert reports["vectorized"] == reports["scalar"]


# -- batched reads are bitwise equal to scalar reads -------------------------


def _pooled_and_private_servers():
    """Two servers over identical counter state: one pooled, one private."""
    plane = ClusterDataPlane(1, N_LCPUS, N_CORES, N_EVENTS)
    server_v = Server(
        Environment(calendar="heap"),
        config=SMALL_HW,
        counter_values=plane.counters[0],
        busy_values=plane.busy[0],
    )
    server_v.data_plane = plane
    server_s = Server(Environment(calendar="heap"), config=SMALL_HW)
    return plane, server_v, server_s


counter_increments = st.lists(
    st.lists(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=N_LCPUS * N_EVENTS,
        max_size=N_LCPUS * N_EVENTS,
    ),
    min_size=1,
    max_size=3,
)


@settings(deadline=None, max_examples=25)
@given(rounds=counter_increments)
def test_vpi_hub_reads_bitwise_match_scalar_reader(rounds):
    plane, server_v, server_s = _pooled_and_private_servers()
    reader_v = VPIReader(server_v, plane=plane, node_index=0, want_core=True)
    assert reader_v._hub is not None
    reader_s = VPIReader(server_s)
    for flat in rounds:
        inc = np.array(flat, dtype=np.float64).reshape(N_LCPUS, N_EVENTS)
        plane.counters[0] += inc
        server_s.counters._values += inc
        plane.generation += 1
        vpi_v, ldst_v, counter_v, core_v = reader_v.sample_full_core()
        vpi_s, ldst_s, counter_s, core_s = reader_s.sample_full_core()
        assert core_s is None
        assert np.array_equal(vpi_v, vpi_s)
        assert np.array_equal(ldst_v, ldst_s)
        assert np.array_equal(counter_v, counter_s)
        assert np.array_equal(
            core_v, aggregate_per_core(vpi_s, ldst_s, N_CORES)
        )


@settings(deadline=None, max_examples=25)
@given(rounds=counter_increments)
def test_core_opt_out_is_per_node_not_cluster_wide(rounds):
    """One cps-mode/faulty monitor must not degrade its neighbours.

    Node 0 registers with ``want_core=False`` (the cps / counter-fault
    case); node 1 keeps ``want_core=True``.  Node 1 must still be served
    the batched per-core aggregate — bitwise equal to its own
    :func:`aggregate_per_core` fallback — while node 0 gets None and
    aggregates for itself.
    """
    plane = ClusterDataPlane(2, N_LCPUS, N_CORES, N_EVENTS)
    servers = [
        Server(
            Environment(calendar="heap"),
            config=SMALL_HW,
            counter_values=plane.counters[i],
            busy_values=plane.busy[i],
        )
        for i in range(2)
    ]
    opted_out = VPIReader(
        servers[0], plane=plane, node_index=0, want_core=False
    )
    opted_in = VPIReader(
        servers[1], plane=plane, node_index=1, want_core=True
    )
    assert opted_out._hub is opted_in._hub
    for flat in rounds:
        inc = np.array(flat, dtype=np.float64).reshape(N_LCPUS, N_EVENTS)
        plane.counters[0] += inc
        plane.counters[1] += 2.0 * inc
        # generation bump alone invalidates the batch key; both nodes
        # read at the same (time, generation) so they share one batch
        plane.generation += 1
        vpi0, ldst0, _c0, core0 = opted_out.sample_full_core()
        vpi1, ldst1, _c1, core1 = opted_in.sample_full_core()
        assert core0 is None
        assert core1 is not None
        assert np.array_equal(core1, aggregate_per_core(vpi1, ldst1, N_CORES))
        # the opted-out node's own fallback still works off its row
        assert aggregate_per_core(vpi0, ldst0, N_CORES).shape == (N_CORES,)


def _aggregate_per_core_scalar_loop(values, weights, n_cores):
    """Plain-python reference for the vectorized per-core aggregation."""
    out = np.zeros(n_cores, dtype=np.float64)
    for c in range(n_cores):
        v0, v1 = values[c], values[n_cores + c]
        w0, w1 = weights[c], weights[n_cores + c]
        total = w0 + w1
        if total > 0:
            out[c] = (v0 * w0 + v1 * w1) / total
    return out


lcpu_vectors = st.lists(
    st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False),
    min_size=2 * N_CORES,
    max_size=2 * N_CORES,
)


@settings(deadline=None, max_examples=50)
@given(values=lcpu_vectors, weights=lcpu_vectors)
def test_aggregate_per_core_bitwise_matches_scalar_loop(values, weights):
    v = np.array(values, dtype=np.float64)
    w = np.array(weights, dtype=np.float64)
    vectorized = aggregate_per_core(v, w, N_CORES)
    reference = _aggregate_per_core_scalar_loop(v, w, N_CORES)
    assert np.array_equal(vectorized, reference, equal_nan=False)
    # bitwise, not just value-equal
    assert vectorized.tobytes() == reference.tobytes()


busy_windows = st.lists(
    st.tuples(
        st.floats(1.0, 1_000.0, allow_nan=False, allow_infinity=False),
        st.lists(
            st.floats(0.0, 2_000.0, allow_nan=False, allow_infinity=False),
            min_size=N_LCPUS,
            max_size=N_LCPUS,
        ),
    ),
    min_size=1,
    max_size=4,
)


@settings(deadline=None, max_examples=25)
@given(rounds=busy_windows)
def test_usage_hub_reads_bitwise_match_scalar_tracker(rounds):
    plane, server_v, server_s = _pooled_and_private_servers()
    clock = SimpleNamespace(now=0.0)
    tracker_v = UsageTracker(clock, server_v, hub=plane.usage_hub)
    tracker_s = UsageTracker(clock, server_s)
    for dt, flat in rounds:
        inc = np.array(flat, dtype=np.float64)
        plane.busy[0] += inc
        server_s.busy_us += inc
        plane.generation += 1
        clock.now += dt
        assert np.array_equal(tracker_v.peek(), tracker_s.peek())
        assert np.array_equal(tracker_v.sample(), tracker_s.sample())


score_grids = st.lists(
    st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
    min_size=5 * N_LCPUS,
    max_size=5 * N_LCPUS,
)


def _fake_nodes(n, lc, reserved, dead):
    nodes = []
    for i in range(n):
        sched = SimpleNamespace(lc_cpus=list(lc), reserved=list(reserved))
        nodes.append(
            SimpleNamespace(
                index=i,
                holmes=SimpleNamespace(scheduler=sched),
                alive=i not in dead,
                batch_load=lambda i=i: 0.25 * i,
            )
        )
    return nodes


@settings(deadline=None, max_examples=40)
@given(
    vpi_vals=score_grids,
    usage_vals=st.lists(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        min_size=5 * N_LCPUS,
        max_size=5 * N_LCPUS,
    ),
    dead=st.sets(st.integers(0, 4), max_size=2),
)
def test_score_vector_bitwise_matches_scalar_score(vpi_vals, usage_vals, dead):
    plane = ClusterDataPlane(5, N_LCPUS, N_CORES, N_EVENTS)
    plane.vpi_ema[:] = np.array(vpi_vals).reshape(5, N_LCPUS)
    plane.usage_ema[:] = np.array(usage_vals).reshape(5, N_LCPUS)
    lc, reserved = [0, 1], [0, 1]
    non_reserved = [c for c in range(N_LCPUS) if c not in set(reserved)]
    nodes = _fake_nodes(5, lc, reserved, dead)
    vec = plane.score_vector(nodes, DEFAULT_WEIGHTS)
    for node in nodes:
        i = node.index
        if node.alive:
            snap = TelemetrySnapshot(
                time=0.0,
                lc_vpi_ema=float(np.mean(plane.vpi_ema[i][np.array(lc)])),
                reserved_pressure=float(
                    np.mean(plane.usage_ema[i][np.array(reserved)])
                ),
                batch_occupancy=float(
                    np.mean(plane.usage_ema[i][np.array(non_reserved)])
                ),
                n_containers=0,
                n_lc_cpus=len(lc),
                expanded=0,
                serving=True,
            )
            expected = interference_score(snap, DEFAULT_WEIGHTS)
        else:
            expected = interference_score(
                None, DEFAULT_WEIGHTS, fallback_occupancy=node.batch_load()
            )
        assert vec[i] == expected


# -- hub window semantics ----------------------------------------------------


def test_usage_hub_off_cohort_row_recomputes_with_its_own_dt():
    plane = ClusterDataPlane(2, N_LCPUS, N_CORES, N_EVENTS)
    hub = plane.usage_hub
    hub.register(0, 0.0)
    hub.register(1, 0.0)
    plane.busy += 40.0
    plane.generation += 1
    # node 1's daemon restarts mid-window: fresh baseline at t=50
    hub.rebaseline(1, 50.0)
    plane.busy += 10.0
    plane.generation += 1
    u0 = hub.sample(0, 100.0)  # cohort row: 50 busy over dt=100
    u1 = hub.sample(1, 100.0)  # off-cohort row: 10 busy over dt=50
    assert np.array_equal(u0, np.full(N_LCPUS, 0.5))
    assert np.array_equal(u1, np.full(N_LCPUS, 0.2))


def test_usage_hub_zero_window_reads_zero():
    plane = ClusterDataPlane(1, N_LCPUS, N_CORES, N_EVENTS)
    hub = plane.usage_hub
    hub.register(0, 25.0)
    plane.busy[0] += 5.0
    plane.generation += 1
    assert np.array_equal(hub.peek(0, 25.0), np.zeros(N_LCPUS))


def test_generation_bump_invalidates_same_instant_batch():
    plane = ClusterDataPlane(2, N_LCPUS, N_CORES, N_EVENTS)
    hub = plane.usage_hub
    hub.register(0, 0.0)
    hub.register(1, 0.0)
    plane.busy += 50.0
    plane.generation += 1
    u0 = hub.sample(0, 100.0)
    # a workload event lands between the two nodes' same-instant reads
    plane.busy[1] += 25.0
    plane.generation += 1
    u1 = hub.sample(1, 100.0)
    assert np.array_equal(u0, np.full(N_LCPUS, 0.5))
    assert np.array_equal(u1, np.full(N_LCPUS, 0.75))
