"""Unit tests for repro.hw.server quantum execution and disk."""

import numpy as np
import pytest

from repro.hw import CpuKind, HWConfig, Server
from repro.sim import Environment


@pytest.fixture
def server():
    return Server(Environment(), HWConfig())


MB_LINES = 16384  # 1 MB / 64 B
MEM_KIND = CpuKind(mem=1.0)
COMP_KIND = CpuKind(comp=1.0)


def _occupy(server, lcpu, kind, us=100000.0):
    """Run a long quantum on ``lcpu`` so its activity window covers a test."""
    if kind.mem > kind.comp:
        server.mem_quantum(lcpu, kind, 10 * MB_LINES, 1.0, None, us)
    else:
        server.comp_quantum(lcpu, kind, 1e9, us)


def test_uncontended_1mb_block_takes_about_1400us(server):
    """Fig 2 calibration: ~1,400 us per random 1 MB block, sibling idle."""
    duration, lines = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 1e9)
    assert lines == MB_LINES
    assert duration == pytest.approx(1400, rel=0.02)


def test_contended_1mb_block_takes_about_2300us(server):
    """Fig 2 calibration: ~2,300 us with a memory-streaming sibling."""
    sibling = server.topology.sibling(0)
    _occupy(server, sibling, MEM_KIND)
    duration, _ = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 1e9)
    assert duration == pytest.approx(2300, rel=0.03)


def test_compute_sibling_mild_inflation(server):
    sibling = server.topology.sibling(0)
    _occupy(server, sibling, COMP_KIND)
    duration, _ = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 1e9)
    assert 1400 < duration < 1700


def test_non_sibling_does_not_interfere(server):
    _occupy(server, 1, MEM_KIND)  # different physical core
    duration, _ = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 1e9)
    assert duration == pytest.approx(1400, rel=0.02)


def test_kind_window_expires(server):
    """Sibling activity stops being visible once its window (plus grace)
    has passed."""
    env = server.env
    sibling = server.topology.sibling(0)
    d, _ = server.mem_quantum(sibling, MEM_KIND, 100, 1.0, None, 50.0)
    assert not server.kind_of(sibling).idle
    env.run(until=env.now + d + 10.0)  # beyond window + 2us grace
    assert server.kind_of(sibling).idle
    duration, _ = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 1e9)
    assert duration == pytest.approx(1400, rel=0.02)


def test_kind_window_grace_covers_lockstep_gap(server):
    """A quantum priced at the exact end of the sibling's quantum still
    sees the sibling as busy (the lock-step DES artifact fix)."""
    env = server.env
    sibling = server.topology.sibling(0)
    d, _ = server.mem_quantum(sibling, MEM_KIND, 10 * MB_LINES, 1.0, None, 50.0)
    env.run(until=env.now + d)  # exactly at the window edge
    # priced as contended: a full 50us quantum moves fewer lines
    _, lines_contended = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 50.0)
    assert lines_contended < 50.0 / 0.0854 * 0.75


def test_quantum_budget_respected(server):
    duration, lines = server.mem_quantum(0, MEM_KIND, MB_LINES, 1.0, None, 100.0)
    assert duration <= 100.0 + 1e-9
    assert lines < MB_LINES


def test_comp_quantum_rate(server):
    cfg = server.config
    duration, cycles = server.comp_quantum(0, COMP_KIND, 240000, 1e9)
    assert cycles == 240000
    assert duration == pytest.approx(240000 / cfg.freq_cycles_per_us)


def test_comp_quantum_slowed_by_sibling(server):
    sibling = server.topology.sibling(0)
    _occupy(server, sibling, COMP_KIND)
    duration, _ = server.comp_quantum(0, COMP_KIND, 240000, 1e9)
    assert duration == pytest.approx(100 * 1.35, rel=0.01)


def test_busy_accounting(server):
    d1, _ = server.mem_quantum(3, MEM_KIND, 1000, 1.0, None, 1e9)
    d2, _ = server.comp_quantum(3, COMP_KIND, 24000, 1e9)
    assert server.busy_us[3] == pytest.approx(d1 + d2)
    assert server.busy_us[4] == 0.0
    snap = server.busy_snapshot()
    snap[3] = 0  # snapshot is a copy
    assert server.busy_us[3] > 0


def test_stream_tracking_via_set_running(server):
    server.set_running(0, CpuKind(mem=1.0))
    assert server.contention.active_dram_streams == 1
    server.set_running(0, CpuKind(mem=1.0))  # idempotent
    assert server.contention.active_dram_streams == 1
    server.set_idle(0)
    assert server.contention.active_dram_streams == 0
    server.set_idle(0)  # idempotent
    assert server.contention.active_dram_streams == 0


def test_low_pressure_not_counted_as_stream(server):
    server.set_running(0, CpuKind(mem=0.1))
    assert server.contention.active_dram_streams == 0
    server.set_idle(0)


def test_invalid_quantum_args(server):
    with pytest.raises(ValueError):
        server.mem_quantum(0, MEM_KIND, 0, 1.0, None, 100.0)
    with pytest.raises(ValueError):
        server.mem_quantum(0, MEM_KIND, 100, 1.0, None, 0.0)
    with pytest.raises(ValueError):
        server.comp_quantum(0, COMP_KIND, -1, 100.0)


def test_disk_io_latency(server):
    env = server.env
    durations = []

    def proc(env):
        for _ in range(50):
            t0 = env.now
            yield from server.disk.io(4096)
            durations.append(env.now - t0)

    env.process(proc(env))
    env.run()
    mean = float(np.mean(durations))
    # base 90us lognormal + ~2us transfer
    assert 60 < mean < 140
    assert server.disk.reads == 50
    assert server.disk.bytes_read == 50 * 4096


def test_disk_channels_queue(server):
    env = server.env
    done_at = []

    def proc(env):
        yield from server.disk.io(64)
        done_at.append(env.now)

    # 3x the channel count of concurrent requests must queue
    for _ in range(server.config.disk_channels * 3):
        env.process(proc(env))
    env.run()
    assert max(done_at) > min(done_at) * 1.5


def test_disk_write_faster_than_read(server):
    reads = [server.disk.service_time(4096, write=False) for _ in range(200)]
    writes = [server.disk.service_time(4096, write=True) for _ in range(200)]
    assert np.mean(writes) < np.mean(reads)


def test_disk_rejects_bad_size(server):
    def proc(env):
        yield from server.disk.io(0)

    p = server.env.process(proc(server.env))
    with pytest.raises(ValueError):
        server.env.run()
