"""Determinism regression tests: same seed => bit-identical results.

The runner's cache and parallel fan-out are only sound if every cell is a
pure function of (params, seed).  These tests pin that property at three
levels: the event-loop tie-breaking it rests on, the Holmes daemon loop,
and each experiment entry point the runner dispatches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.export import canonical_dumps
from repro.runner import Cell, execute_cell
from repro.sim import Environment, RecurringTimeout
from repro.sim.core import NORMAL, URGENT

# -- heapq tie-breaking ----------------------------------------------------------


def test_same_timestamp_flood_fires_fifo():
    """500 timeouts landing on one instant fire in creation order."""
    env = Environment()
    order = []

    def waiter(env, i):
        yield env.timeout(5.0)
        order.append(i)

    for i in range(500):
        env.process(waiter(env, i))
    env.run()
    assert order == list(range(500))


def test_equal_time_mixed_delays_fifo_by_schedule_order():
    """Events scheduled for the same instant via different (delay, creation
    time) pairs fire in scheduling order, not delay or creation order."""
    env = Environment()
    order = []

    def late_scheduler(env):
        # at t=2, schedule a timeout for t=5 -- *after* the t=0 processes
        # scheduled theirs, so it must fire after every one of them
        yield env.timeout(2.0)
        yield env.timeout(3.0)
        order.append("late")

    def early(env, i):
        yield env.timeout(5.0)
        order.append(i)

    env.process(late_scheduler(env))
    for i in range(10):
        env.process(early(env, i))
    env.run()
    assert order == list(range(10)) + ["late"]


def test_urgent_priority_beats_fifo_at_same_instant():
    env = Environment()
    fired = []
    normal = env.event()
    urgent = env.event()
    normal.callbacks.append(lambda e: fired.append("normal"))
    urgent.callbacks.append(lambda e: fired.append("urgent"))
    normal.succeed(priority=NORMAL)
    urgent.succeed(priority=URGENT)  # scheduled second, fires first
    env.run()
    assert fired == ["urgent", "normal"]


def test_recurring_timeout_orders_like_fresh_timeouts():
    """A rearm()ed RecurringTimeout interleaves with competitors exactly
    like a loop allocating a fresh Timeout at the same point would."""

    def run(use_recurring: bool) -> list:
        env = Environment()
        log = []

        def periodic(env):
            if use_recurring:
                timer = RecurringTimeout(env, 10.0)
                while env.now < 100.0:
                    yield timer
                    log.append(("tick", env.now))
                    timer.rearm()
            else:
                while env.now < 100.0:
                    yield env.timeout(10.0)
                    log.append(("tick", env.now))

        def competitor(env):
            # same-timestamp competitor: fires at every multiple of 10 too
            while env.now < 100.0:
                yield env.timeout(5.0)
                log.append(("comp", env.now))

        env.process(periodic(env))
        env.process(competitor(env))
        env.run(until=120.0)
        return log

    assert run(True) == run(False)


def test_recurring_timeout_rearm_before_fire_is_an_error():
    from repro.sim import SimulationError

    env = Environment()
    timer = RecurringTimeout(env, 10.0)
    with pytest.raises(SimulationError):
        timer.rearm()


# -- daemon loop -----------------------------------------------------------------


def _daemon_trace() -> dict:
    """One short Holmes run over live traffic + batch; full internal state."""
    from repro.core import Holmes, HolmesConfig
    from repro.experiments.common import ExperimentScale, build_system
    from repro.workloads.kv import make_service
    from repro.yarnlike import ContinuousSubmitter, NodeManager
    from repro.ycsb import YCSBClient, workload_by_name

    scale = ExperimentScale(duration_us=20_000.0)
    system = build_system(scale)
    service = make_service("redis", system, n_keys=2_000)
    service.start(lcpus={0, 1, 2, 3})
    holmes = Holmes(system, HolmesConfig(n_reserved=4))
    holmes.start()
    holmes.register_lc_service(service.pid)
    nm = NodeManager(system, seed=scale.seed + 7)
    ContinuousSubmitter(nm, target_concurrent=2, tasks_per_container=2).start()
    client = YCSBClient(
        system.env, service, workload_by_name("a"), 30_000.0,
        np.random.default_rng(scale.seed + 17),
    )
    client.start(scale.duration_us)
    system.run(until=scale.duration_us)
    return {
        "ticks": holmes.ticks,
        "active_ticks": holmes.active_ticks,
        "events": [
            (e.time, e.action, e.detail) for e in holmes.scheduler.events
        ],
        "vpi_times": holmes.vpi_history.times.tolist(),
        "vpi_values": holmes.vpi_history.values.tolist(),
        "latencies": service.recorder.latencies().tolist(),
    }


def test_daemon_loop_bit_identical_across_runs():
    a = canonical_dumps(_daemon_trace())
    b = canonical_dumps(_daemon_trace())
    assert a == b


# -- experiment entry points -----------------------------------------------------


def _payload_bytes(kind: str, params: dict, seed: int = 42) -> bytes:
    return canonical_dumps(execute_cell(Cell.make(kind, params, seed))).encode()


@pytest.mark.parametrize(
    "kind,params",
    [
        ("colocation", {"service": "redis", "workload": "a",
                        "setting": "holmes", "duration_us": 20_000.0}),
        ("colocation", {"service": "memcached", "workload": "b",
                        "setting": "perfiso", "duration_us": 20_000.0}),
        ("colocation", {"service": "rocksdb", "workload": "a",
                        "setting": "alone", "duration_us": 20_000.0}),
        ("fig2", {"duration_us": 3_000.0}),
        ("hpe", {"duration_us": 10_000.0}),
        ("convergence", {"heracles_epoch_us": 150_000.0,
                         "parties_step_us": 50_000.0}),
    ],
    ids=["colo-holmes", "colo-perfiso", "colo-alone", "fig2", "hpe",
         "convergence"],
)
@pytest.mark.slow
def test_experiment_entry_points_bit_identical(kind, params):
    assert _payload_bytes(kind, params) == _payload_bytes(kind, params)


def test_different_seeds_differ():
    """Sanity: the seed actually reaches the experiment."""
    params = {"service": "redis", "workload": "a", "setting": "alone",
              "duration_us": 10_000.0}
    assert _payload_bytes("colocation", params, seed=1) != _payload_bytes(
        "colocation", params, seed=2
    )
