"""The resilience layer: retry policy, chaos engine, journal, resume.

The contract under test: whatever the chaos plan injects and whenever
the parent dies, a sweep's merged report is byte-identical to a clean
uninterrupted run -- recovery re-executes cells, never alters them --
and the journal proves which cells a resumed sweep actually recomputed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faults import (
    FaultChannel,
    standard_chaos_plan,
    transport_chaos_plan,
)
from repro.runner import (
    Cell,
    ChaosExecutor,
    ChaosFault,
    ExperimentRequest,
    ExperimentRunner,
    InProcessExecutor,
    ResultCache,
    RetryPolicy,
    SweepJournal,
    Task,
)

# -- retry policy --------------------------------------------------------------


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(seed=7)
    first = policy.backoff_s("cellA", 1)
    assert first == policy.backoff_s("cellA", 1)
    assert policy.backoff_s("cellB", 1) != first
    assert policy.backoff_s("cellA", 2) != first
    low = policy.backoff_base_s * (1.0 - policy.jitter)
    high = policy.backoff_base_s * (1.0 + policy.jitter)
    assert low <= first <= high
    # exponential growth is capped at backoff_max_s (plus jitter)
    late = policy.backoff_s("cellA", 50)
    assert late <= policy.backoff_max_s * (1.0 + policy.jitter)


def test_retry_policy_classifies_poisonous_errors():
    policy = RetryPolicy()
    assert policy.is_poisonous(MemoryError())
    assert policy.is_poisonous(KeyboardInterrupt())
    assert not policy.is_poisonous(RuntimeError("transient"))
    assert not policy.is_poisonous(ChaosFault("injected"))

    class OutOfMemoryish(MemoryError):
        pass

    # classification walks the MRO, so subclasses are poisonous too
    assert policy.is_poisonous(OutOfMemoryish())


def test_retry_policy_validation_and_round_trip():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(requeue_budget=-1)
    assert RetryPolicy.from_cell_retries(2).max_attempts == 3
    policy = RetryPolicy(max_attempts=5, seed=3, requeue_budget=2)
    assert RetryPolicy.from_dict(policy.to_dict()) == policy


# -- fault channels ------------------------------------------------------------


def test_fault_channel_fires_at_nth_opportunity():
    plan = transport_chaos_plan(seed=0, kill_at_task=3)
    channel = FaultChannel.of(plan, "worker_kill", "worker0")
    hits = [channel.draw() is not None for _ in range(6)]
    assert hits == [False, False, True, False, False, False]


def test_fault_channel_rate_draws_are_reproducible_and_capped():
    plan = transport_chaos_plan(seed=5, kill_rate=0.5, fault_cap=2)
    one = FaultChannel.of(plan, "worker_kill", "transport")
    two = FaultChannel.of(plan, "worker_kill", "transport")
    pattern_one = [one.draw() is not None for _ in range(40)]
    pattern_two = [two.draw() is not None for _ in range(40)]
    assert pattern_one == pattern_two, "same channel must replay exactly"
    assert sum(pattern_one) == 2, "fault_cap bounds total fires"


# -- chaos executor ------------------------------------------------------------


def _sleep_task(task_id: int, seed: int = 1) -> Task:
    cell = Cell.make("sleep", {"wall_s": 0.0}, seed)
    return Task(task_id, cell.kind, cell.param_dict, cell.seed)


def test_chaos_executor_rejects_non_transport_kinds():
    plan = standard_chaos_plan(seed=0, counter_error_rate=0.5)
    with pytest.raises(ValueError, match="non-transport"):
        ChaosExecutor(InProcessExecutor(), plan)


def test_chaos_executor_refuses_before_the_inner_executor():
    # connect_refuse is capped at one fire in the preset: the first task
    # never reaches the inner executor, the second passes through.
    plan = transport_chaos_plan(seed=0, connect_refuse_rate=1.0)
    with ChaosExecutor(InProcessExecutor(), plan) as ex:
        ex.submit(_sleep_task(0))
        comps = ex.wait()
        assert len(comps) == 1
        assert isinstance(comps[0].error, ChaosFault)
        assert not ex.inner._queue, "refused task must not reach the inner"
        ex.submit(_sleep_task(1))
        comps = ex.wait()
        assert comps[0].ok


def test_chaos_executor_dooms_completions_after_compute():
    plan = transport_chaos_plan(seed=0, kill_at_task=1)
    with ChaosExecutor(InProcessExecutor(), plan) as ex:
        ex.submit(_sleep_task(0))
        comps = ex.wait()
        assert isinstance(comps[0].error, ChaosFault)
        assert "worker_kill" in str(comps[0].error)
        ex.submit(_sleep_task(1))
        assert ex.wait()[0].ok, "the kill fired once, at the first task"


def test_chaos_run_report_matches_clean_run():
    requests = [
        ExperimentRequest.make("sleep", {"wall_s": 0.0, "tag": f"t{i}"}, i)
        for i in range(4)
    ]
    clean = ExperimentRunner(parallel=1).run(requests).merged_bytes()
    plan = transport_chaos_plan(
        seed=3,
        kill_rate=0.4,
        connect_refuse_rate=0.5,
        truncate_rate=0.3,
        garbage_rate=0.3,
        slow_rate=0.3,
        slow_duration_us=1_000.0,
    )
    chaotic = ExperimentRunner(parallel=1, chaos_plan=plan).run(requests)
    assert chaotic.merged_bytes() == clean


# -- sweep journal -------------------------------------------------------------


def test_journal_round_trip_and_stats(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with SweepJournal(path) as journal:
        journal.append({"rec": "start", "n_cells": 2})
        journal.append({"rec": "plan", "cell": "a"})
        journal.append({"rec": "plan", "cell": "b"})
        journal.append({"rec": "retry", "cell": "b", "attempt": 1})
        journal.append({"rec": "done", "cell": "a", "compute_s": 0.5})
    records = SweepJournal.load(path)
    assert [r["rec"] for r in records] == [
        "start",
        "plan",
        "plan",
        "retry",
        "done",
    ]
    stats = SweepJournal.stats_of(records)
    assert stats.planned == ("a", "b")
    assert stats.done == {"a": 0.5}
    assert stats.unfinished == ("b",)
    assert stats.retries == 1
    assert not stats.ended


def test_journal_tolerates_torn_tail_but_not_corrupt_middle(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with SweepJournal(path) as journal:
        journal.append({"rec": "plan", "cell": "a"})
        journal.append({"rec": "done", "cell": "a", "compute_s": 0.1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"rec":"done","cell":')  # SIGKILL mid-append
    records = SweepJournal.load(path)
    assert [r["rec"] for r in records] == ["plan", "done"]

    corrupt = str(tmp_path / "corrupt.jsonl")
    with open(corrupt, "w", encoding="utf-8") as fh:
        fh.write('{"rec":"plan","cell":"a"}\n')
        fh.write("not json at all\n")
        fh.write('{"rec":"end"}\n')
    with pytest.raises(ValueError, match="corrupt journal line 2"):
        SweepJournal.load(corrupt)


def test_resume_validation():
    with pytest.raises(ValueError, match="journal"):
        ExperimentRunner(resume=True)
    with pytest.raises(ValueError, match="cache"):
        ExperimentRunner(journal="journal.jsonl", resume=True)
    with pytest.raises(ValueError, match="dispatch"):
        ExperimentRunner(
            chaos_plan=transport_chaos_plan(kill_rate=0.1),
            dispatch="static",
        )


def test_resume_reuses_cache_and_recomputes_only_unfinished(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    path = str(tmp_path / "journal.jsonl")
    requests = [
        ExperimentRequest.make("sleep", {"wall_s": 0.0, "tag": f"t{i}"}, i)
        for i in range(4)
    ]
    ExperimentRunner(cache=cache, parallel=1, journal=path).run(requests[:2])
    resumed = ExperimentRunner(
        cache=cache, parallel=1, journal=path, resume=True
    ).run(requests)
    reference = ExperimentRunner(parallel=1).run(requests)
    assert resumed.merged_bytes() == reference.merged_bytes()
    assert resumed.n_cell_runs == 2, "only the two new cells may compute"
    records = SweepJournal.load(path)
    resume_recs = [r for r in records if r["rec"] == "resume"]
    assert len(resume_recs) == 1
    assert resume_recs[0]["recovered"] == 2


# -- crash-safe resume after SIGKILL -------------------------------------------

_DRIVER = """\
import sys

from repro.runner import ExperimentRequest, ExperimentRunner, ResultCache

executor, cache_dir, journal = sys.argv[1:4]
requests = [
    ExperimentRequest.make("sleep", {"wall_s": 0.4, "tag": f"t{i}"}, seed=i)
    for i in range(4)
]
runner = ExperimentRunner(
    cache=ResultCache(cache_dir),
    parallel=2,
    executor=executor,
    journal=journal,
)
runner.run(requests)
"""


@pytest.mark.slow
@pytest.mark.parametrize("executor", ["inprocess", "pool", "socket"])
def test_sigkilled_sweep_resumes_byte_identical(executor, tmp_path):
    """SIGKILL the parent mid-sweep; resume must complete byte-identical
    to an uninterrupted run, recomputing only the unfinished cells."""
    import repro

    cache_dir = str(tmp_path / "cache")
    path = str(tmp_path / "journal.jsonl")
    env = os.environ.copy()
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [pkg_root]
    parts += [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, executor, cache_dir, path],
        env=env,
        stdin=subprocess.DEVNULL,
    )
    killed = False
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if os.path.exists(path):
                with open(path, encoding="utf-8") as fh:
                    if '"rec":"done"' in fh.read():
                        os.kill(proc.pid, signal.SIGKILL)
                        killed = True
                        break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
    finally:
        if proc.poll() is None and not killed:
            proc.kill()
        proc.wait(timeout=60)
    assert killed, "the sweep finished before the kill landed"

    before = SweepJournal.stats_of(SweepJournal.load(path))
    assert before.done, "the kill waited for at least one completion"
    assert before.unfinished, "the kill must interrupt a live sweep"
    assert not before.ended

    requests = [
        ExperimentRequest.make("sleep", {"wall_s": 0.4, "tag": f"t{i}"}, i)
        for i in range(4)
    ]
    resumed = ExperimentRunner(
        cache=ResultCache(cache_dir),
        parallel=2,
        journal=path,
        resume=True,
    ).run(requests)
    reference = ExperimentRunner(parallel=1).run(requests)
    assert resumed.merged_bytes() == reference.merged_bytes()

    records = SweepJournal.load(path)
    assert SweepJournal.stats_of(records).ended
    second_start = max(i for i, r in enumerate(records) if r.get("rec") == "start")
    segment = records[second_start:]
    assert any(rec.get("rec") == "resume" for rec in segment)
    fresh_done = {rec["cell"] for rec in segment if rec.get("rec") == "done"}
    fresh_cached = {rec["cell"] for rec in segment if rec.get("rec") == "cached"}
    # the journal proves it: every journalled completion of the killed
    # run came back from the cache, and only unfinished cells recomputed.
    assert set(before.done) <= fresh_cached
    assert fresh_done.isdisjoint(before.done)
    assert fresh_done | fresh_cached == set(before.planned)
