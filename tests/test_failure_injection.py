"""Failure-injection tests: the system under rude conditions.

Co-location controllers must survive services dying mid-run, container
kill storms, cgroup churn, and pathological affinity flapping without
crashing or leaking state.
"""

import numpy as np
import pytest

from repro.core import Holmes
from repro.hw import CompOp, HWConfig
from repro.oskernel import System, ThreadState
from repro.workloads.batch import BatchJobSpec
from repro.workloads.kv import RedisService
from repro.yarnlike import ContinuousSubmitter, NodeManager
from repro.ycsb import WORKLOAD_A, YCSBClient


def small_system():
    return System(config=HWConfig(sockets=1, cores_per_socket=8))


SHORT_JOB = BatchJobSpec(name="short", iterations=30, mem_lines=2000,
                         mem_dram_frac=0.8, comp_cycles=1_000_000)


def test_lc_service_death_mid_run():
    """Holmes keeps running when the registered service process dies."""
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    service = RedisService(system, n_keys=1000)
    service.start(lcpus=set(holmes.reserved_cpus))
    holmes.register_lc_service(service.pid)
    client = YCSBClient(system.env, service, WORKLOAD_A, 10_000,
                        np.random.default_rng(1))
    client.start(100_000)

    def killer(env):
        yield env.timeout(30_000.0)
        service.proc.kill()

    system.env.process(killer(system.env))
    system.run(until=100_000)
    assert not service.proc.alive
    # the daemon kept ticking through the death
    assert holmes.ticks == pytest.approx(2000, abs=5)
    # dead service reads as not serving
    assert not holmes.monitor.lc_services[service.pid].serving


def test_container_kill_storm():
    """Kill every container the moment it appears; nothing breaks."""
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    nm = NodeManager(system, default_cpuset=holmes.non_reserved_cpus())
    sub = ContinuousSubmitter(nm, target_concurrent=3, mix=[SHORT_JOB],
                              tasks_per_container=2)
    sub.start()

    def assassin(env):
        while env.now < 60_000:
            yield env.timeout(3_000.0)
            for job in nm.running_jobs:
                nm.kill_job(job)

    system.env.process(assassin(system.env))
    system.run(until=80_000)
    # the submitter kept replacing murdered jobs
    assert sub.submitted > 10
    # monitor state converged: tracked containers match live cgroups
    names = set(system.cgroups.list_children("/yarn"))
    holmes.monitor.collect()
    assert set(holmes.monitor.containers) == names


def test_cgroup_churn_does_not_leak_tracking():
    system = small_system()
    holmes = Holmes(system)
    for i in range(50):
        path = f"/yarn/ghost_{i}"
        system.cgroups.create(path)
        sample = holmes.monitor.collect()
        assert len(sample.new_containers) == 1
        system.cgroups.remove(path)
        sample = holmes.monitor.collect()
        assert len(sample.gone_containers) == 1
    assert holmes.monitor.containers == {}


def test_affinity_flapping_storm():
    """1,000 affinity changes against running threads stay consistent."""
    system = small_system()
    proc = system.spawn_process("victim")
    threads = [
        proc.spawn_thread(
            lambda th: iter_body(th), affinity={0, 1}, name=f"t{i}"
        )
        for i in range(4)
    ]

    def iter_body(thread):
        for _ in range(2000):
            yield from thread.exec(CompOp(cycles=24_000))

    rng = np.random.default_rng(7)

    def flapper(env):
        for _ in range(1000):
            yield env.timeout(17.0)
            t = threads[int(rng.integers(len(threads)))]
            if not t.alive:
                continue
            cpus = set(int(c) for c in rng.choice(16, size=2, replace=False))
            system.sched_setaffinity(t.tid, cpus)

    system.env.process(flapper(system.env))
    system.run(until=200_000)
    for t in threads:
        # each thread either finished cleanly or is still runnable
        assert t.state in (ThreadState.DONE, ThreadState.RUNNING,
                           ThreadState.WAITING_CPU)
        if t.last_lcpu is not None and t.alive:
            assert t.last_lcpu < 16
    # no CPU slot leaked: everything eventually runs to completion
    system.run()
    assert all(t.state == ThreadState.DONE for t in threads)
    for slot in system.cpu_slots:
        assert slot.count == 0
        assert slot.queue_length == 0


def test_service_queue_overflow_under_flood():
    """A flooded service rejects excess work instead of exploding."""
    system = small_system()
    service = RedisService(system, n_keys=1000, queue_capacity=100)
    service.start(lcpus={0})
    client = YCSBClient(system.env, service, WORKLOAD_A, 500_000,  # 10x cap
                        np.random.default_rng(3))
    client.start(100_000)
    system.run(until=150_000)
    assert client.dropped > 0
    assert service.rejected == client.dropped
    assert service.queue_depth() <= 100
    # and the service is still live: everything accepted was served
    assert service.completed > 1000


def test_holmes_survives_zero_batch_and_zero_lc():
    """A daemon with nothing to manage is a stable no-op."""
    system = small_system()
    holmes = Holmes(system)
    holmes.start()
    system.run(until=50_000)
    assert holmes.ticks == pytest.approx(1000, abs=2)
    actions = {e.action for e in holmes.scheduler.events}
    assert "dealloc_sibling" not in actions
    assert "expand" not in actions


def test_kill_job_mid_disk_io():
    """Threads blocked on disk I/O die cleanly when killed."""
    system = small_system()

    def io_body(thread):
        for _ in range(100):
            yield from thread.disk_io(1_000_000)  # long transfers

    proc = system.spawn_process("io")
    t = proc.spawn_thread(io_body, affinity={0})

    def killer(env):
        yield env.timeout(700.0)  # mid-transfer
        t.kill()

    system.env.process(killer(system.env))
    system.run(until=10_000)
    assert t.state == ThreadState.KILLED
    # the disk channel was released despite the kill
    assert system.server.disk.channels.count == 0
