"""Unit tests for repro.hw.topology and repro.hw.events."""

import pytest

from repro.hw import HWConfig, Topology
from repro.hw import events


@pytest.fixture
def topo():
    return Topology(HWConfig())


def test_default_shape(topo):
    # 2 sockets x 16 cores x 2 threads, like the paper's testbed
    assert topo.n_cores == 32
    assert topo.n_lcpus == 64


def test_sibling_is_involution(topo):
    for lcpu in topo.all_lcpus():
        assert topo.sibling(topo.sibling(lcpu)) == lcpu
        assert topo.sibling(lcpu) != lcpu


def test_siblings_share_core(topo):
    for lcpu in topo.all_lcpus():
        assert topo.core_of(lcpu) == topo.core_of(topo.sibling(lcpu))


def test_linux_style_numbering(topo):
    assert topo.sibling(0) == 32
    assert topo.sibling(31) == 63
    assert topo.core_of(0) == 0
    assert topo.core_of(32) == 0
    assert topo.core_of(33) == 1


def test_lcpus_of_core(topo):
    for core in topo.all_cores():
        a, b = topo.lcpus_of_core(core)
        assert topo.core_of(a) == core
        assert topo.core_of(b) == core
        assert topo.sibling(a) == b


def test_socket_of(topo):
    assert topo.socket_of(0) == 0
    assert topo.socket_of(15) == 0
    assert topo.socket_of(16) == 1
    assert topo.socket_of(32) == 0  # sibling of lcpu 0
    assert topo.socket_of(48) == 1


def test_non_siblings_of(topo):
    lc = {0, 1}
    non_sib = topo.non_siblings_of(lc)
    assert 0 not in non_sib and 1 not in non_sib
    assert 32 not in non_sib and 33 not in non_sib
    assert 2 in non_sib and 34 in non_sib
    assert len(non_sib) == 64 - 4


def test_same_core(topo):
    assert topo.same_core(0, 32)
    assert not topo.same_core(0, 1)


def test_out_of_range_rejected(topo):
    with pytest.raises(ValueError):
        topo.sibling(64)
    with pytest.raises(ValueError):
        topo.core_of(-1)
    with pytest.raises(ValueError):
        topo.lcpus_of_core(32)


def test_only_two_way_smt_supported():
    with pytest.raises(ValueError):
        Topology(HWConfig(threads_per_core=4))


def test_event_codes_match_paper_table1():
    assert events.CYCLES_L3_MISS.code == 0x02A3
    assert events.STALLS_L3_MISS.code == 0x06A3
    assert events.CYCLES_MEM_ANY.code == 0x10A3
    assert events.STALLS_MEM_ANY.code == 0x14A3


def test_event_lookup():
    assert events.by_code(0x14A3) is events.STALLS_MEM_ANY
    assert events.by_name("CYCLES_MEM_ANY") is events.CYCLES_MEM_ANY
    with pytest.raises(KeyError):
        events.by_code(0xDEAD)


def test_candidate_events_order():
    names = [e.name for e in events.CANDIDATE_EVENTS]
    assert names == [
        "CYCLES_L3_MISS",
        "STALLS_L3_MISS",
        "CYCLES_MEM_ANY",
        "STALLS_MEM_ANY",
    ]
