"""Tests for the observability plane: bus, metrics, plane, exporters,
and the wiring through the co-location / cluster experiments."""

import json

import numpy as np
import pytest

from repro.obs import (
    CATEGORIES,
    EventBus,
    Histogram,
    MetricsRegistry,
    ObservabilityPlane,
    chrome_trace,
    dumps_canonical,
    events_jsonl,
    write_trace_bundle,
)
from repro.obs.metrics import metric_key


# -- event bus -----------------------------------------------------------------


def test_bus_emission_order_and_counts():
    bus = EventBus()
    bus.emit("sched", "a", 1.0, "n0", {"x": 1})
    bus.emit("fault", "b", 0.5, "n1", None)
    bus.emit("sched", "a", 2.0, "n0", {"x": 2})
    snap = bus.snapshot()
    # emission order, not time order: merge order is the exporter's job
    assert [e["name"] for e in snap] == ["a", "b", "a"]
    assert snap[0] == {"t": 1.0, "cat": "sched", "name": "a",
                      "node": "n0", "args": {"x": 1}}
    assert bus.counts() == {"fault/b": 1, "sched/a": 2}
    assert [e.args["x"] for e in bus.events(category="sched")] == [1, 2]
    assert [e.name for e in bus.events(node="n1")] == ["b"]


def test_bus_drops_newest_past_cap():
    bus = EventBus(max_events=3)
    for i in range(5):
        bus.emit("sched", f"e{i}", float(i), "", None)
    snap = bus.snapshot()
    assert [e["name"] for e in snap] == ["e0", "e1", "e2"]  # oldest kept
    assert bus.dropped == 2


def test_bus_sanitises_arg_values():
    bus = EventBus()
    bus.emit("sched", "e", 0.0, "", {
        "np_int": np.int64(3),
        "np_float": np.float64(1.5),
        "a_set": {"b", "a"},
        "a_tuple": (1, 2),
    })
    args = bus.snapshot()[0]["args"]
    assert args == {"np_int": 3, "np_float": 1.5,
                    "a_set": ["a", "b"], "a_tuple": [1, 2]}
    assert type(args["np_int"]) is int
    # sanitized payloads serialise without a custom encoder
    json.dumps(args)


# -- metrics -------------------------------------------------------------------


def test_metric_key_sorts_labels():
    assert metric_key("m", {}) == "m"
    assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


def test_registry_counter_gauge_and_type_clash():
    reg = MetricsRegistry()
    reg.counter("jobs", node="n0").inc()
    reg.counter("jobs", node="n0").inc(2)
    reg.gauge("util").set(0.5)
    snap = reg.snapshot()
    assert snap["jobs{node=n0}"] == {"type": "counter", "value": 3}
    assert snap["util"] == {"type": "gauge", "value": 0.5}
    with pytest.raises(TypeError):
        reg.gauge("jobs", node="n0")


def test_histogram_bounds_validation():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0, 2.0))


def test_histogram_quantiles_clamped_and_interpolated():
    h = Histogram((10.0, 20.0, 30.0))
    h.observe_many([5.0] * 10)
    snap = h.snapshot()
    # one busy bucket: the estimate clamps to the observed max
    assert snap["p50"] == 5.0
    assert snap["p99"] == 5.0
    assert snap["count"] == 10
    assert snap["min"] == 5.0 and snap["max"] == 5.0
    h2 = Histogram((10.0, 20.0))
    h2.observe_many([1.0, 11.0, 12.0, 1000.0])  # one overflow sample
    s2 = h2.snapshot()
    assert s2["overflow"] == 1
    assert s2["p99"] <= 1000.0  # interpolates toward the observed max
    assert s2["p50"] <= 20.0


def test_empty_histogram_snapshot():
    snap = Histogram((1.0, 2.0)).snapshot()
    assert snap["count"] == 0
    assert snap["p50"] is None and snap["min"] is None


# -- plane ---------------------------------------------------------------------


def test_plane_spec_round_trip():
    assert ObservabilityPlane.from_spec(None) is None
    full = ObservabilityPlane.from_spec("all")
    assert full.spec() == "all"
    assert full.categories == frozenset(CATEGORIES)
    empty = ObservabilityPlane.from_spec("none")
    assert empty.spec() == "none"
    assert not empty.wants("sched")
    some = ObservabilityPlane.from_spec("sched, fault")
    assert some.spec() == "fault,sched"
    assert some.wants("sched") and not some.wants("daemon")
    assert ObservabilityPlane.coerce(full) is full


def test_plane_rejects_unknown_category():
    with pytest.raises(ValueError, match="unknown observability"):
        ObservabilityPlane(categories=("sched", "nope"))


def test_plane_gating_and_node_scope():
    plane = ObservabilityPlane.from_spec("sched")
    plane.emit("sched", "kept", 1.0)
    plane.emit("daemon", "gated", 2.0)
    scope = plane.for_node("node3")
    scope.emit("sched", "scoped", 3.0, detail="x")
    events = plane.bus.snapshot()
    assert [e["name"] for e in events] == ["kept", "scoped"]
    assert events[1]["node"] == "node3"
    assert plane.metrics is None  # no "metrics" category


def test_plane_snapshot_excludes_runner_by_default():
    plane = ObservabilityPlane.from_spec("all")
    plane.emit("sched", "a", 1.0)
    plane.emit("runner", "progress", 0.1, node="runner")
    snap = plane.snapshot()
    assert [e["cat"] for e in snap["events"]] == ["sched"]
    assert snap["n_events"] == 1
    full = plane.snapshot(include_runner=True)
    assert [e["cat"] for e in full["events"]] == ["sched", "runner"]
    assert "metrics" in snap


def test_node_scope_metrics_inject_node_label():
    plane = ObservabilityPlane.from_spec("all")
    scope = plane.for_node("n7")
    scope.counter("jobs").inc()
    scope.histogram("lat", (1.0, 2.0)).observe(1.5)
    keys = set(plane.metrics.snapshot())
    assert keys == {"jobs{node=n7}", "lat{node=n7}"}


# -- exporters -----------------------------------------------------------------


def _two_streams():
    a = ObservabilityPlane.from_spec("all")
    a.emit("sched", "x", 2.0, node="n0", detail="later")
    a.emit("sched", "y", 1.0, node="n0")
    b = ObservabilityPlane.from_spec("all")
    b.emit("fault", "z", 1.0, node="n1", draw=4)
    return {"cell_b": b.snapshot(), "cell_a": a.snapshot()}


def test_events_jsonl_total_order():
    lines = events_jsonl(_two_streams()).splitlines()
    rows = [json.loads(ln) for ln in lines]
    # (t, stream, seq): t=1 of cell_a before t=1 of cell_b before t=2
    assert [(r["t"], r["stream"], r["name"]) for r in rows] == [
        (1.0, "cell_a", "y"), (1.0, "cell_b", "z"), (2.0, "cell_a", "x"),
    ]
    for ln in lines:  # canonical: sorted keys, no spaces
        assert ln == dumps_canonical(json.loads(ln))


def test_chrome_trace_shape():
    streams = _two_streams()
    streams["cell_a"]["quanta"] = {
        "lcpu": [0, 1], "tid": [10, 11], "is_mem": [True, False],
        "start": [0.0, 5.0], "duration": [2.0, 3.0], "dropped": 0,
    }
    trace = chrome_trace(streams)
    evs = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in evs}
    assert phases == {"M", "X", "i"}
    slices = [e for e in evs if e["ph"] == "X"]
    assert len(slices) == 2
    assert slices[0]["tid"] == 0 and slices[0]["args"]["is_mem"] is True
    # stream pids follow sorted stream-name order
    names = {e["args"]["name"] for e in evs
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"cell_a", "cell_b"}
    instants = [e for e in evs if e["ph"] == "i"]
    assert all(e["s"] == "p" for e in instants)


def test_write_trace_bundle_deterministic(tmp_path):
    d1, d2 = tmp_path / "one", tmp_path / "two"
    p1 = write_trace_bundle(str(d1), _two_streams())
    p2 = write_trace_bundle(str(d2), _two_streams())
    assert set(p1) == {"trace.json", "events.jsonl", "metrics.json",
                       "timeline.txt"}
    for name in p1:
        b1 = open(p1[name], "rb").read()
        b2 = open(p2[name], "rb").read()
        assert b1 == b2, name
    json.loads(open(p1["trace.json"]).read())  # well-formed


def test_analysis_views_handle_empty():
    from repro.analysis.obs import (
        format_event_summary,
        format_metrics_table,
        format_timeline,
    )

    assert format_event_summary({}) == "(no events)"
    assert format_timeline({}) == "(no events)\n"
    assert format_metrics_table({}) == "(no metrics)"
    streams = _two_streams()
    assert "sched/x" in format_event_summary(streams)
    assert "[n1]" in format_timeline(streams)


# -- experiment wiring ---------------------------------------------------------


def _small_colo(obs=None, faults=None, duration_us=30_000.0):
    from repro.experiments.colocation import run_colocation
    from repro.experiments.common import ExperimentScale

    return run_colocation(
        "redis", "a", "holmes",
        scale=ExperimentScale(duration_us=duration_us, seed=42),
        obs=obs, faults=faults,
    )


def test_colocation_obs_none_leaves_result_unobserved():
    res = _small_colo(obs=None)
    assert res.obs is None


def test_colocation_obs_snapshot_with_audit_and_quanta():
    res = _small_colo(obs="all")
    obs = res.obs
    assert obs is not None and obs["n_events"] > 0
    sched = [e for e in obs["events"] if e["cat"] == "sched"]
    assert sched
    for ev in sched:
        args = ev["args"]
        # every scheduler action carries the full decision audit
        for key in ("e_threshold", "t_expand", "s_hold_us", "health",
                    "degraded", "n_lc_cpus", "expanded"):
            assert key in args, (ev["name"], key)
        assert args["e_threshold"] == 40.0
    percpu = [e for e in sched
              if e["name"] in ("dealloc_sibling", "realloc_sibling")]
    assert percpu  # the run must exercise the core loop
    for ev in percpu:
        args = ev["args"]
        assert "lcpu" in args and "vpi" in args and "sibling" in args
        assert "s_remaining_us" in args
    # metrics and quanta ride in the same snapshot
    assert any(k.startswith("query_latency_us") for k in obs["metrics"])
    q = obs["quanta"]
    n = len(q["start"])
    assert n > 0
    assert len(q["lcpu"]) == len(q["duration"]) == n


def test_colocation_obs_event_stream_reproducible():
    a = _small_colo(obs="all", duration_us=20_000.0)
    b = _small_colo(obs="all", duration_us=20_000.0)
    assert dumps_canonical(a.obs) == dumps_canonical(b.obs)


def test_colocation_cell_payload_omits_obs_when_disabled():
    from repro.runner.cells import Cell, execute_cell

    params = {"service": "redis", "workload": "a", "setting": "holmes",
              "duration_us": 20_000.0}
    plain = execute_cell(Cell.make("colocation", params, 42))
    assert "obs" not in plain
    observed = execute_cell(
        Cell.make("colocation", {**params, "obs": "all"}, 42)
    )
    assert observed["obs"]["n_events"] > 0
    # the obs section is additive: everything else is untouched
    obs_less = {k: v for k, v in observed.items() if k != "obs"}
    assert dumps_canonical(obs_less) == dumps_canonical(plain)


@pytest.mark.slow
def test_observed_sweep_serial_parallel_byte_identical():
    from repro.runner import ExperimentRequest, ExperimentRunner

    params = {"service": "redis", "workload": "a", "setting": "holmes",
              "duration_us": 20_000.0, "obs": "all"}
    req = ExperimentRequest.make("colocation", params, 42)
    serial = ExperimentRunner(parallel=1).run([req])
    par = ExperimentRunner(parallel=2).run([req])
    assert serial.merged_bytes() == par.merged_bytes()


def test_fault_events_carry_draw_indices():
    from repro.faults import standard_chaos_plan

    plan = standard_chaos_plan(
        seed=0, counter_error_rate=0.1, garbage_rate=0.05,
        tick_miss_rate=0.05,
    )
    res = _small_colo(obs="all", faults=plan.to_json())
    faults = [e for e in res.obs["events"] if e["cat"] == "fault"]
    assert faults
    for ev in faults:
        assert ev["args"]["draw"] >= 1
        assert ev["args"]["injected"] >= 1
    # per-kind draw indices are monotone in emission order
    by_kind = {}
    for ev in faults:
        draws = by_kind.setdefault(ev["name"], [])
        draws.append(ev["args"]["draw"])
    for kind, draws in by_kind.items():
        assert draws == sorted(draws), kind


def test_injector_stats_dict_shape_unchanged():
    """Draw counts live in draws_dict(); stats_dict() keeps its committed
    shape so existing chaos payloads stay byte-identical."""
    from repro.faults import FaultInjector, FaultPlan, standard_chaos_plan

    inj = FaultInjector(FaultPlan(seed=0, specs=()), scope="n")
    assert inj.stats_dict() == {}
    assert inj.draws_dict() == {}  # like stats_dict: configured kinds only
    plan = standard_chaos_plan(seed=0, counter_error_rate=0.1)
    inj2 = FaultInjector(plan, scope="n")
    stats = inj2.stats_dict()
    assert set(stats) == {"counter_read_error"}
    assert not any("draw" in k for k in stats)
    assert inj2.draws_dict() == {"counter_read_error": 0}


def test_cluster_sweep_obs_sections():
    from repro.cluster.sweep import run_cluster_sweep

    kw = dict(policy="score", n_nodes=2, n_jobs=5,
              duration_us=30_000.0, seed=42)
    plain = run_cluster_sweep(**kw)
    assert "obs" not in plain and "node_health" not in plain
    observed = run_cluster_sweep(**kw, obs="all")
    assert observed["obs"]["n_events"] > 0
    health = observed["node_health"]
    assert [row["name"] for row in health] == ["server0", "server1"]
    for row in health:
        assert row["alive"] is True
        assert "lc_vpi_ema" in row and "daemon" in row
    # additive sections only: the shared keys are byte-identical
    trimmed = {k: v for k, v in observed.items()
               if k not in ("obs", "node_health")}
    assert dumps_canonical(trimmed) == dumps_canonical(plain)


def test_format_node_health_table():
    from repro.analysis.cluster import format_node_health_table

    rows = [
        {"name": "server0", "alive": True, "failures": 0,
         "health": "healthy", "lc_vpi_ema": 12.5,
         "reserved_pressure": 0.1, "batch_occupancy": 0.4,
         "n_containers": 2, "n_lc_cpus": 4, "expanded": 1,
         "serving": True, "stale_windows": 0,
         "degraded_total_us": 1500.0, "missed_ticks": 0,
         "watchdog_recoveries": 0},
        {"name": "server1", "alive": False, "failures": 2},
    ]
    out = format_node_health_table(rows)
    lines = out.splitlines()
    assert lines[0].split()[0] == "node"
    assert "server0" in lines[1] and "4+1" in lines[1]
    assert "DOWN" in lines[2] and lines[2].count("-") >= 5
